#include "runtime/fault.hpp"

#include <limits>

namespace arb::runtime {

FaultProfile FaultProfile::uniform(double rate, std::uint64_t seed) {
  FaultProfile profile;
  profile.seed = seed;
  profile.corrupt_rate = rate;
  profile.duplicate_rate = rate;
  profile.drop_rate = rate;
  profile.reorder_rate = rate;
  profile.stale_rate = rate;
  return profile;
}

FaultInjector::FaultInjector(UpdateStream& inner, FaultProfile profile,
                             std::size_t pool_count)
    : inner_(&inner),
      profile_(profile),
      pool_count_(pool_count),
      rng_(profile.seed) {}

PoolUpdateEvent FaultInjector::corrupt(PoolUpdateEvent event) {
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  const bool concentrated = event.liquidity > 0.0;
  switch (rng_.index(5)) {
    case 0:  // NaN in the live field of the payload
      (concentrated ? event.price : event.reserve0) = kNan;
      break;
    case 1:  // sign flip
      if (concentrated) {
        event.liquidity = -event.liquidity;
      } else {
        event.reserve1 = -event.reserve1;
      }
      break;
    case 2:  // zeroed state
      if (concentrated) {
        event.price = 0.0;
      } else {
        event.reserve0 = 0.0;
        event.reserve1 = 0.0;
      }
      break;
    case 3:  // wrong-kind payload for the target pool
      if (concentrated) {
        event.liquidity = 0.0;
        event.price = 0.0;
        event.reserve0 = 1.0;
        event.reserve1 = 1.0;
      } else {
        event.liquidity = 1.0;
        event.price = 1.0;
      }
      break;
    default: {  // unknown pool id, just past the snapshot's range
      const std::uint32_t base =
          pool_count_ > 0 ? static_cast<std::uint32_t>(pool_count_)
                          : 1u << 20;
      event.pool = PoolId(base + event.pool.value());
      break;
    }
  }
  return event;
}

void FaultInjector::remember(const PoolUpdateEvent& event) {
  if (history_.size() < kHistoryCapacity) {
    history_.push_back(event);
  } else {
    history_[history_next_] = event;
    history_next_ = (history_next_ + 1) % kHistoryCapacity;
  }
}

std::optional<PoolUpdateEvent> FaultInjector::next() {
  for (;;) {
    if (!pending_.empty()) {
      PoolUpdateEvent event = pending_.front();
      pending_.pop_front();
      ++counts_.delivered;
      return event;
    }
    std::optional<PoolUpdateEvent> pulled = inner_->next();
    if (!pulled.has_value()) {
      if (held_.has_value()) {  // flush a reorder held at end of stream
        PoolUpdateEvent event = *held_;
        held_.reset();
        ++counts_.delivered;
        return event;
      }
      return std::nullopt;
    }
    ++counts_.pulled;
    PoolUpdateEvent event = *pulled;

    // Fixed draw order per pulled event: five Bernoullis, then any
    // draws the fired faults need. This is what makes a run a pure
    // function of (seed, profile, inner stream).
    const bool fire_corrupt = rng_.bernoulli(profile_.corrupt_rate);
    const bool fire_duplicate = rng_.bernoulli(profile_.duplicate_rate);
    const bool fire_drop = rng_.bernoulli(profile_.drop_rate);
    const bool fire_reorder = rng_.bernoulli(profile_.reorder_rate);
    const bool fire_stale = rng_.bernoulli(profile_.stale_rate);

    if (fire_corrupt) {
      event = corrupt(event);
      ++counts_.corrupted;
    }
    if (fire_stale && !history_.empty()) {
      pending_.push_back(history_[rng_.index(history_.size())]);
      ++counts_.stale_replayed;
    }
    if (fire_duplicate) {
      pending_.push_back(event);
      ++counts_.duplicated;
    }
    if (fire_drop) {
      ++counts_.dropped;
      continue;  // duplicates/stale replays queued above still flow
    }
    remember(event);
    if (fire_reorder && !held_.has_value()) {
      held_ = event;  // emitted right after its successor
      ++counts_.reordered;
      continue;
    }
    if (held_.has_value()) {
      pending_.push_back(*held_);
      held_.reset();
    }
    ++counts_.delivered;
    return event;
  }
}

}  // namespace arb::runtime
