#pragma once

/// \file incremental_scanner.hpp
/// Maintains core::scan_market's output incrementally under pool-reserve
/// updates, across K parallel shards.
///
/// Dirty-set invariant: a cycle's valuation reads nothing but its own
/// pools' reserves and the (immutable) CEX feed, so after apply() returns
/// every universe slot equals what core::evaluate_opportunity would
/// produce from scratch on the current reserves — yet only cycles
/// traversing an updated pool were re-priced. The ranked view is
/// therefore bit-identical to a full scan_market on the same state.
///
/// Sharding (DESIGN.md §11): a `ShardPlan` partitions the cycle universe
/// into K disjoint shards; each shard exclusively owns its cycles' slots,
/// warm-start entries and quarantine counters, and re-prices its own
/// dirty set on the shared `WorkerPool`. All shards read one
/// `market::MarketView` — a dense projection the scanner refreshes
/// per-pool after each graph write — so no shard deep-copies the
/// snapshot. The global ranked set is a K-way merge of the per-shard
/// rankings under the single-shard comparator (net profit descending,
/// canonical rotation key ascending); rotation keys are unique, the
/// order is strictly total, and the merge is therefore bit-identical to
/// the K=1 ranking for any K.

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.hpp"
#include "core/scanner.hpp"
#include "market/snapshot.hpp"
#include "market/view.hpp"
#include "runtime/event.hpp"
#include "runtime/pool_index.hpp"
#include "runtime/shard_plan.hpp"
#include "runtime/worker_pool.hpp"

namespace arb::runtime {

/// What one apply() round did (feeds the metrics layer).
struct ApplyReport {
  std::size_t events = 0;        ///< batch size received
  std::size_t unique_pools = 0;  ///< after last-wins coalescing
  std::size_t repriced = 0;      ///< dirty cycles re-evaluated
  /// Convex strategy with convex_warm_start only: barrier solves that
  /// resumed from the cycle's previous optimum vs. ones that cold-started
  /// (closed-form, generic and price-product-gated cycles count as
  /// neither — warm starts are CPMM-only).
  std::size_t warm_hits = 0;
  std::size_t warm_misses = 0;
  /// Convex strategy only: total Newton iterations across this round's
  /// barrier solves (0 for analytic and generic solves).
  std::uint64_t solver_iterations = 0;
  /// Per-kind split of `repriced`: loops whose hops are all CPMM vs.
  /// loops crossing at least one StableSwap/concentrated pool (the
  /// latter route through the derivative-free generic solver under the
  /// Convex strategy), plus wall time spent pricing each class.
  std::size_t repriced_cpmm = 0;
  std::size_t repriced_mixed = 0;
  double reprice_cpmm_us = 0.0;
  double reprice_mixed_us = 0.0;
  /// Convex strategy only: barrier solves rescued by the generic
  /// derivative-free fallback rung of the containment ladder.
  std::uint64_t solver_fallbacks = 0;
  /// Per-shard share of `repriced` (size = shard count).
  std::vector<std::size_t> shard_repriced;
};

class IncrementalScanner {
 public:
  /// Builds the pool→cycle index, partitions the universe into `shards`
  /// shards and prices every cycle once. `workers` (optional, not owned,
  /// must outlive the scanner) sizes dirty loops in parallel; with
  /// nullptr everything runs inline. `shards` = 1 is the classic
  /// single-shard engine; any K produces bit-identical ranked sets.
  [[nodiscard]] static Result<IncrementalScanner> create(
      market::MarketSnapshot snapshot, core::ScannerConfig config,
      WorkerPool* workers = nullptr, std::size_t shards = 1);

  IncrementalScanner(IncrementalScanner&&) = default;
  IncrementalScanner& operator=(IncrementalScanner&&) = default;

  /// Applies a batch of reserve updates and re-prices affected loops.
  /// Events carry absolute reserves; within a batch the last event per
  /// pool wins (earlier ones are coalesced away). Updated pools are
  /// routed to every shard whose cycles traverse them.
  [[nodiscard]] Result<ApplyReport> apply(
      const std::vector<PoolUpdateEvent>& batch);

  /// Ranked opportunities (best first), pointers into internal slots.
  /// Invalidated by the next apply(). Non-const: the ranking is
  /// finalized lazily here — apply() only marks shards stale, and the
  /// per-shard re-sorts plus the K-way merge run on first observation,
  /// keeping the merge cost out of the event hot path.
  [[nodiscard]] const std::vector<const core::Opportunity*>& ranked() {
    rebuild_ranking();
    return ranked_;
  }

  /// Deep copy of the ranked set — element-for-element what
  /// core::scan_market would return on the current reserves.
  [[nodiscard]] std::vector<core::Opportunity> collect();

  /// Same, but into a caller-owned vector whose capacity is reused
  /// across polls (the allocation-free polling path).
  void collect_into(std::vector<core::Opportunity>& out);

  /// Marks a pool (un)quarantined. Every cycle traversing a quarantined
  /// pool is excluded from the ranked set: its slot empties and its warm
  /// start invalidates on entry, and it stays skipped by reprice() until
  /// every quarantined pool on it is released. The ranked view updates on
  /// the next apply() (an empty batch suffices). Un-quarantining alone
  /// does not re-price — the caller follows up with an update event for
  /// the pool (the resync), which dirties exactly its cycles.
  void set_quarantined(PoolId pool, bool quarantined);
  [[nodiscard]] bool pool_quarantined(PoolId pool) const;

  [[nodiscard]] const market::MarketSnapshot& snapshot() const {
    return snapshot_;
  }
  [[nodiscard]] const PoolCycleIndex& index() const { return index_; }
  [[nodiscard]] const core::ScannerConfig& config() const { return config_; }
  /// Dense read-only market projection, fresh as of the last apply().
  [[nodiscard]] const market::MarketView& view() const { return view_; }
  [[nodiscard]] const ShardPlan& plan() const { return plan_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

 private:
  /// Everything one shard exclusively owns, indexed by the shard-local
  /// cycle position (plan_.cycles_of(s)[local] is the universe index).
  struct Shard {
    /// One slot per owned cycle; empty = not currently an opportunity
    /// (wrong orientation, unprofitable, or below the net threshold).
    std::vector<std::optional<core::Opportunity>> slots;
    /// Per-cycle warm-start cache (previous barrier optimum in raw token
    /// units + terminal sharpness). Consulted only when
    /// config_.convex_warm_start is set; entries invalidate themselves
    /// whenever a cycle leaves the profitable orientation.
    std::vector<optim::WarmStart> warm;
    /// Per-cycle "crosses a non-CPMM pool" flag, precomputed once (pool
    /// kinds never change).
    std::vector<char> mixed;
    /// How many of the cycle's pools are quarantined — excluded exactly
    /// while non-zero.
    std::vector<std::uint32_t> quarantine_count;
    /// Local positions of present slots, best first. Rebuilt lazily:
    /// only when `ranking_stale` (set by reprice or quarantine entry).
    std::vector<std::uint32_t> ranked;
    /// Scratch for apply(): dirty local positions and their flags.
    std::vector<std::uint32_t> dirty;
    std::vector<char> dirty_flag;
    /// Per-lane solver contexts: the shard's dirty set is split into
    /// contiguous chunks, one context per chunk, so workspaces are
    /// reused without contention.
    std::vector<core::ConvexContext> contexts;
    bool ranking_stale = true;
  };

  IncrementalScanner(market::MarketSnapshot snapshot,
                     core::ScannerConfig config, PoolCycleIndex index,
                     ShardPlan plan, WorkerPool* workers);

  /// Re-evaluates every shard's pending `dirty` list (ascending local
  /// positions), fanning lanes out over the worker pool, and accumulates
  /// warm-start / iteration stats into \p report.
  [[nodiscard]] Status reprice_dirty(ApplyReport& report);
  /// Re-sorts stale per-shard rankings and K-way merges them into the
  /// global ranked view. No-op when nothing changed since the last call;
  /// the collect paths invoke it lazily so apply() never pays for
  /// rankings nobody observes between batches.
  void rebuild_ranking();

  market::MarketSnapshot snapshot_;
  core::ScannerConfig config_;
  PoolCycleIndex index_;
  ShardPlan plan_;
  WorkerPool* workers_;  ///< nullable, not owned
  market::MarketView view_;

  std::vector<Shard> shards_;
  std::vector<const core::Opportunity*> ranked_;
  /// True until the first merge; per-shard staleness drives re-merges
  /// after that.
  bool merge_stale_ = true;
  /// Per-pool quarantine flag (pool → 0/1), shared by all shards; the
  /// per-cycle counts live with their owning shard.
  std::vector<char> pool_quarantined_;
};

}  // namespace arb::runtime
