#pragma once

/// \file incremental_scanner.hpp
/// Maintains core::scan_market's output incrementally under pool-reserve
/// updates.
///
/// Dirty-set invariant: a cycle's valuation reads nothing but its own
/// pools' reserves and the (immutable) CEX feed, so after apply() returns
/// every universe slot equals what core::evaluate_opportunity would
/// produce from scratch on the current reserves — yet only cycles
/// traversing an updated pool were re-priced. The ranked view is
/// therefore bit-identical to a full scan_market on the same state.

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.hpp"
#include "core/scanner.hpp"
#include "market/snapshot.hpp"
#include "runtime/event.hpp"
#include "runtime/pool_index.hpp"
#include "runtime/worker_pool.hpp"

namespace arb::runtime {

/// What one apply() round did (feeds the metrics layer).
struct ApplyReport {
  std::size_t events = 0;        ///< batch size received
  std::size_t unique_pools = 0;  ///< after last-wins coalescing
  std::size_t repriced = 0;      ///< dirty cycles re-evaluated
  /// Convex strategy with convex_warm_start only: barrier solves that
  /// resumed from the cycle's previous optimum vs. ones that cold-started
  /// (closed-form, generic and price-product-gated cycles count as
  /// neither — warm starts are CPMM-only).
  std::size_t warm_hits = 0;
  std::size_t warm_misses = 0;
  /// Convex strategy only: total Newton iterations across this round's
  /// barrier solves (0 for analytic and generic solves).
  std::uint64_t solver_iterations = 0;
  /// Per-kind split of `repriced`: loops whose hops are all CPMM vs.
  /// loops crossing at least one StableSwap/concentrated pool (the
  /// latter route through the derivative-free generic solver under the
  /// Convex strategy), plus wall time spent pricing each class.
  std::size_t repriced_cpmm = 0;
  std::size_t repriced_mixed = 0;
  double reprice_cpmm_us = 0.0;
  double reprice_mixed_us = 0.0;
  /// Convex strategy only: barrier solves rescued by the generic
  /// derivative-free fallback rung of the containment ladder.
  std::uint64_t solver_fallbacks = 0;
};

class IncrementalScanner {
 public:
  /// Builds the pool→cycle index and prices every universe cycle once.
  /// `workers` (optional, not owned, must outlive the scanner) sizes
  /// dirty loops in parallel; with nullptr everything runs inline.
  [[nodiscard]] static Result<IncrementalScanner> create(
      market::MarketSnapshot snapshot, core::ScannerConfig config,
      WorkerPool* workers = nullptr);

  IncrementalScanner(IncrementalScanner&&) = default;
  IncrementalScanner& operator=(IncrementalScanner&&) = default;

  /// Applies a batch of reserve updates and re-prices affected loops.
  /// Events carry absolute reserves; within a batch the last event per
  /// pool wins (earlier ones are coalesced away).
  [[nodiscard]] Result<ApplyReport> apply(
      const std::vector<PoolUpdateEvent>& batch);

  /// Ranked opportunities (best first), pointers into internal slots.
  /// Invalidated by the next apply().
  [[nodiscard]] const std::vector<const core::Opportunity*>& ranked() const {
    return ranked_;
  }

  /// Deep copy of the ranked set — element-for-element what
  /// core::scan_market would return on the current reserves.
  [[nodiscard]] std::vector<core::Opportunity> collect() const;

  /// Marks a pool (un)quarantined. Every cycle traversing a quarantined
  /// pool is excluded from the ranked set: its slot empties and its warm
  /// start invalidates on entry, and it stays skipped by reprice() until
  /// every quarantined pool on it is released. The ranked view updates on
  /// the next apply() (an empty batch suffices). Un-quarantining alone
  /// does not re-price — the caller follows up with an update event for
  /// the pool (the resync), which dirties exactly its cycles.
  void set_quarantined(PoolId pool, bool quarantined);
  [[nodiscard]] bool pool_quarantined(PoolId pool) const;

  [[nodiscard]] const market::MarketSnapshot& snapshot() const {
    return snapshot_;
  }
  [[nodiscard]] const PoolCycleIndex& index() const { return index_; }
  [[nodiscard]] const core::ScannerConfig& config() const { return config_; }

 private:
  IncrementalScanner(market::MarketSnapshot snapshot,
                     core::ScannerConfig config, PoolCycleIndex index,
                     WorkerPool* workers);

  /// Re-evaluates the given universe cycles (ascending indices),
  /// accumulating warm-start / iteration stats into \p report.
  [[nodiscard]] Status reprice(const std::vector<std::uint32_t>& dirty,
                               ApplyReport& report);
  void rebuild_ranking();

  market::MarketSnapshot snapshot_;
  core::ScannerConfig config_;
  PoolCycleIndex index_;
  WorkerPool* workers_;  ///< nullable, not owned

  /// One slot per universe cycle; empty = not currently an opportunity
  /// (wrong orientation, unprofitable, or below the net threshold).
  std::vector<std::optional<core::Opportunity>> slots_;
  std::vector<const core::Opportunity*> ranked_;

  /// Per-cycle warm-start cache (previous barrier optimum in raw token
  /// units + terminal sharpness). Consulted only when
  /// config_.convex_warm_start is set; entries invalidate themselves
  /// whenever a cycle leaves the profitable orientation.
  std::vector<optim::WarmStart> warm_;
  /// Per-cycle "crosses a non-CPMM pool" flag. Pool kinds are fixed at
  /// construction (updates change state, never kind), so this is
  /// precomputed once and drives the per-kind reprice accounting.
  std::vector<char> mixed_;
  /// Per-pool quarantine flag plus, per cycle, how many of its pools are
  /// quarantined — a cycle is excluded exactly while its count is
  /// non-zero, which handles cycles traversing several quarantined pools.
  std::vector<char> pool_quarantined_;
  std::vector<std::uint32_t> cycle_quarantine_count_;
  /// Per-lane solver contexts: reprice() partitions the dirty set into
  /// contiguous chunks, one context per chunk, so workspaces are reused
  /// without contention. Buffers grow to the largest loop seen and then
  /// steady-state solves allocate nothing.
  std::vector<core::ConvexContext> contexts_;
};

}  // namespace arb::runtime
