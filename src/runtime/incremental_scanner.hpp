#pragma once

/// \file incremental_scanner.hpp
/// Maintains core::scan_market's output incrementally under pool-reserve
/// updates.
///
/// Dirty-set invariant: a cycle's valuation reads nothing but its own
/// pools' reserves and the (immutable) CEX feed, so after apply() returns
/// every universe slot equals what core::evaluate_opportunity would
/// produce from scratch on the current reserves — yet only cycles
/// traversing an updated pool were re-priced. The ranked view is
/// therefore bit-identical to a full scan_market on the same state.

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.hpp"
#include "core/scanner.hpp"
#include "market/snapshot.hpp"
#include "runtime/event.hpp"
#include "runtime/pool_index.hpp"
#include "runtime/worker_pool.hpp"

namespace arb::runtime {

/// What one apply() round did (feeds the metrics layer).
struct ApplyReport {
  std::size_t events = 0;        ///< batch size received
  std::size_t unique_pools = 0;  ///< after last-wins coalescing
  std::size_t repriced = 0;      ///< dirty cycles re-evaluated
};

class IncrementalScanner {
 public:
  /// Builds the pool→cycle index and prices every universe cycle once.
  /// `workers` (optional, not owned, must outlive the scanner) sizes
  /// dirty loops in parallel; with nullptr everything runs inline.
  [[nodiscard]] static Result<IncrementalScanner> create(
      market::MarketSnapshot snapshot, core::ScannerConfig config,
      WorkerPool* workers = nullptr);

  IncrementalScanner(IncrementalScanner&&) = default;
  IncrementalScanner& operator=(IncrementalScanner&&) = default;

  /// Applies a batch of reserve updates and re-prices affected loops.
  /// Events carry absolute reserves; within a batch the last event per
  /// pool wins (earlier ones are coalesced away).
  [[nodiscard]] Result<ApplyReport> apply(
      const std::vector<PoolUpdateEvent>& batch);

  /// Ranked opportunities (best first), pointers into internal slots.
  /// Invalidated by the next apply().
  [[nodiscard]] const std::vector<const core::Opportunity*>& ranked() const {
    return ranked_;
  }

  /// Deep copy of the ranked set — element-for-element what
  /// core::scan_market would return on the current reserves.
  [[nodiscard]] std::vector<core::Opportunity> collect() const;

  [[nodiscard]] const market::MarketSnapshot& snapshot() const {
    return snapshot_;
  }
  [[nodiscard]] const PoolCycleIndex& index() const { return index_; }
  [[nodiscard]] const core::ScannerConfig& config() const { return config_; }

 private:
  IncrementalScanner(market::MarketSnapshot snapshot,
                     core::ScannerConfig config, PoolCycleIndex index,
                     WorkerPool* workers);

  /// Re-evaluates the given universe cycles (ascending indices).
  [[nodiscard]] Status reprice(const std::vector<std::uint32_t>& dirty);
  void rebuild_ranking();

  market::MarketSnapshot snapshot_;
  core::ScannerConfig config_;
  PoolCycleIndex index_;
  WorkerPool* workers_;  ///< nullable, not owned

  /// One slot per universe cycle; empty = not currently an opportunity
  /// (wrong orientation, unprofitable, or below the net threshold).
  std::vector<std::optional<core::Opportunity>> slots_;
  std::vector<const core::Opportunity*> ranked_;
};

}  // namespace arb::runtime
