#pragma once

/// \file incremental_scanner.hpp
/// Maintains core::scan_market's output incrementally under pool-reserve
/// updates, across K parallel shards, with a staged epoch pipeline.
///
/// Dirty-set invariant: a cycle's valuation reads nothing but its own
/// pools' reserves and the (immutable) CEX feed, so after a batch's
/// epoch completes every universe slot equals what
/// core::evaluate_opportunity would produce from scratch on the current
/// reserves — yet only cycles traversing an updated pool were re-priced.
/// The ranked view is therefore bit-identical to a full scan_market on
/// the same state.
///
/// Staged epochs (DESIGN.md §12): the serial apply() is decomposed into
/// four stages the service overlaps into a pipeline —
///
///   begin_epoch(batch)   writes the batch into the EpochMarket's *back*
///                        buffer and routes dirty cycles into per-shard
///                        pending sets; may run while the previous
///                        epoch's reprice lanes are still in flight
///                        (they read the frozen *front* buffer).
///   wait_reprice()       harvests the in-flight lanes (from the
///                        previous launch) and returns their report.
///   commit_epoch()       the epoch-swap barrier: flips the back buffer
///                        to front and promotes pending dirty sets to
///                        active. Requires no lanes in flight.
///   launch_reprice()     fans the active dirty sets out as lanes on the
///                        WorkerPool (inline without one) and returns
///                        immediately.
///
/// apply() = begin + commit + launch + wait, which is exactly the serial
/// engine — pipelining at any depth replays the same write sequence into
/// each buffer and prices the same frozen states, so results stay
/// bit-identical to serial K=1 for any K and depth.
///
/// Repricing itself is two passes per lane (the SoA gate): pass A sweeps
/// the lane's dirty cycles as a contiguous array walk over the dense
/// view's cached relative prices — computing each loop's price product
/// from flattened (pool, side) gate arrays, bit-identical to
/// MarketView::price_product — and only survivors (product > 1) fall
/// into pass B's per-cycle solver ladder (warm start / closed form /
/// barrier / generic), which is untouched.
///
/// Sharding (DESIGN.md §11): a `ShardPlan` partitions the cycle universe
/// into K disjoint shards; each shard exclusively owns its cycles'
/// slots, warm-start entries and quarantine counters. The global ranked
/// set is a K-way merge of the per-shard rankings under the single-shard
/// comparator (net profit descending, canonical rotation key ascending);
/// rotation keys are unique, the order is strictly total, and the merge
/// is therefore bit-identical to the K=1 ranking for any K.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/result.hpp"
#include "core/scanner.hpp"
#include "market/snapshot.hpp"
#include "market/view.hpp"
#include "runtime/epoch_market.hpp"
#include "runtime/event.hpp"
#include "runtime/pool_index.hpp"
#include "runtime/shard_plan.hpp"
#include "runtime/worker_pool.hpp"

namespace arb::runtime {

/// What one apply() round did (feeds the metrics layer).
struct ApplyReport {
  std::size_t events = 0;        ///< batch size received
  std::size_t unique_pools = 0;  ///< after last-wins coalescing
  std::size_t repriced = 0;      ///< dirty cycles re-evaluated
  /// Convex strategy with convex_warm_start only: barrier solves that
  /// resumed from the cycle's previous optimum vs. ones that cold-started
  /// (closed-form, generic-routed and price-product-gated cycles count
  /// as neither — both CPMM and mixed loops warm-start on the barrier
  /// fast path).
  std::size_t warm_hits = 0;
  std::size_t warm_misses = 0;
  /// Warm slots that went valid → invalid this round: quarantine entries
  /// plus solver-side invalidations (generic routing, rescue fallbacks,
  /// failed warm retries). Profitless gate visits deliberately do NOT
  /// invalidate — that was the live warm-hit-rate leak.
  std::size_t warm_invalidations = 0;
  /// Convex strategy only: total Newton iterations across this round's
  /// barrier solves (0 for analytic and generic solves).
  std::uint64_t solver_iterations = 0;
  /// Per-kind split of `repriced`: loops whose hops are all CPMM vs.
  /// loops crossing at least one StableSwap/concentrated pool, plus wall
  /// time spent pricing each class.
  std::size_t repriced_cpmm = 0;
  std::size_t repriced_mixed = 0;
  double reprice_cpmm_us = 0.0;
  double reprice_mixed_us = 0.0;
  /// Convex strategy only: split of the mixed solves that reached the
  /// solver ladder (gate survivors) by route — the analytic-kernel
  /// barrier fast path vs. the derivative-free generic solver (fast-path
  /// disabled, tick-crossing caps, degenerate hop state, or rescue).
  /// Gate-rejected mixed cycles count in `repriced_mixed` but in neither
  /// split, so fast + generic ≤ repriced_mixed.
  std::size_t repriced_mixed_fast = 0;
  std::size_t repriced_mixed_generic = 0;
  /// Convex strategy only: barrier solves rescued by the generic
  /// derivative-free fallback rung of the containment ladder.
  std::uint64_t solver_fallbacks = 0;
  /// Per-shard share of `repriced` (size = shard count).
  std::vector<std::size_t> shard_repriced;
};

class IncrementalScanner {
 public:
  /// Builds the pool→cycle index, partitions the universe into `shards`
  /// shards and prices every cycle once. `workers` (optional, not owned,
  /// must outlive the scanner) sizes dirty loops in parallel; with
  /// nullptr everything runs inline. `shards` = 1 is the classic
  /// single-shard engine; any K produces bit-identical ranked sets.
  [[nodiscard]] static Result<IncrementalScanner> create(
      market::MarketSnapshot snapshot, core::ScannerConfig config,
      WorkerPool* workers = nullptr, std::size_t shards = 1);

  IncrementalScanner(IncrementalScanner&&) = default;
  IncrementalScanner& operator=(IncrementalScanner&&) = default;

  /// Applies a batch of reserve updates and re-prices affected loops —
  /// the serial composition begin_epoch + commit_epoch + launch_reprice
  /// + wait_reprice. Events carry absolute reserves; within a batch the
  /// last event per pool wins (earlier ones are coalesced away). Updated
  /// pools are routed to every shard whose cycles traverse them.
  [[nodiscard]] Result<ApplyReport> apply(
      const std::vector<PoolUpdateEvent>& batch);

  /// Stage 1: stages a batch into the back market buffer and the
  /// per-shard pending dirty sets. Safe to call while a reprice is in
  /// flight (the lanes read the frozen front buffer). On error the
  /// entire batch is rolled back — the back buffer is restored to the
  /// front state and no pending dirty survives. At most one epoch may be
  /// staged at a time.
  [[nodiscard]] Status begin_epoch(const std::vector<PoolUpdateEvent>& batch);

  /// Stage 3 (barrier): commits the staged epoch — swaps the market
  /// buffers and promotes pending dirty sets to active. Requires a
  /// staged epoch and no reprice in flight.
  void commit_epoch();

  /// Stage 4: fans the active dirty sets out as gate+solve lanes on the
  /// worker pool (inline without one) and returns. Requires no reprice
  /// already in flight.
  void launch_reprice();

  /// Stage 2: joins the in-flight lanes and returns the completed
  /// epoch's report (first lane error otherwise). Requires a launched
  /// reprice.
  [[nodiscard]] Result<ApplyReport> wait_reprice();

  /// True between launch_reprice() and wait_reprice().
  [[nodiscard]] bool reprice_in_flight() const { return in_flight_; }

  /// Ranked opportunities (best first), pointers into internal slots.
  /// Invalidated by the next apply(). Non-const: the ranking is
  /// finalized lazily here — apply() only marks shards stale, and the
  /// per-shard re-sorts plus the K-way merge run on first observation,
  /// keeping the merge cost out of the event hot path. Must not be
  /// called while a reprice is in flight.
  [[nodiscard]] const std::vector<const core::Opportunity*>& ranked() {
    rebuild_ranking();
    return ranked_;
  }

  /// Deep copy of the ranked set — element-for-element what
  /// core::scan_market would return on the current reserves.
  [[nodiscard]] std::vector<core::Opportunity> collect();

  /// Same, but into a caller-owned vector whose capacity is reused
  /// across polls (the allocation-free polling path).
  void collect_into(std::vector<core::Opportunity>& out);

  /// Marks a pool (un)quarantined. Every cycle traversing a quarantined
  /// pool is excluded from the ranked set: its slot empties and its warm
  /// start invalidates on entry, and it stays skipped by reprice() until
  /// every quarantined pool on it is released. The ranked view updates on
  /// the next apply() (an empty batch suffices). Un-quarantining alone
  /// does not re-price — the caller follows up with an update event for
  /// the pool (the resync), which dirties exactly its cycles. Must not
  /// be called while a reprice is in flight.
  void set_quarantined(PoolId pool, bool quarantined);
  [[nodiscard]] bool pool_quarantined(PoolId pool) const;

  /// The committed (front) market buffer.
  [[nodiscard]] const market::MarketSnapshot& snapshot() const {
    return market_.front();
  }
  [[nodiscard]] const PoolCycleIndex& index() const { return index_; }
  [[nodiscard]] const core::ScannerConfig& config() const { return config_; }
  /// Dense read-only market projection, fresh as of the last committed
  /// epoch.
  [[nodiscard]] const market::MarketView& view() const {
    return market_.front_view();
  }
  /// The double-buffered epoch store itself (diagnostics and tests).
  [[nodiscard]] const EpochMarket& market() const { return market_; }
  [[nodiscard]] const ShardPlan& plan() const { return plan_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

 private:
  /// Per-lane accumulator for one reprice round.
  struct LaneStats {
    std::size_t warm_hits = 0;
    std::size_t warm_misses = 0;
    std::size_t warm_invalidations = 0;
    std::uint64_t solver_iterations = 0;
    std::size_t repriced_cpmm = 0;
    std::size_t repriced_mixed = 0;
    std::size_t repriced_mixed_fast = 0;
    std::size_t repriced_mixed_generic = 0;
    double cpmm_us = 0.0;
    double mixed_us = 0.0;
    std::uint64_t solver_fallbacks = 0;
  };

  /// Everything one shard exclusively owns, indexed by the shard-local
  /// cycle position (plan_.cycles_of(s)[local] is the universe index).
  struct Shard {
    /// One slot per owned cycle; empty = not currently an opportunity
    /// (wrong orientation, unprofitable, or below the net threshold).
    std::vector<std::optional<core::Opportunity>> slots;
    /// Per-cycle warm-start cache (previous barrier optimum in raw token
    /// units + terminal sharpness). Consulted only when
    /// config_.convex_warm_start is set.
    std::vector<optim::WarmStart> warm;
    /// Per-cycle "crosses a non-CPMM pool" flag, precomputed once (pool
    /// kinds never change).
    std::vector<char> mixed;
    /// How many of the cycle's pools are quarantined — excluded exactly
    /// while non-zero.
    std::vector<std::uint32_t> quarantine_count;
    /// Flattened SoA gate tables, built once: for shard-local cycle i,
    /// positions gate_offset[i]..gate_offset[i+1] of gate_pool/gate_side
    /// name the (pool, price side) factors of its price product in cycle
    /// order — side 0 reads rel_price0 (token_in == token0), side 1
    /// reads rel_price1. Walking them over the view's raw price arrays
    /// reproduces MarketView::price_product bit for bit.
    std::vector<std::uint32_t> gate_offset;
    std::vector<std::uint32_t> gate_pool;
    std::vector<std::uint8_t> gate_side;
    /// Local positions of present slots, best first. Rebuilt lazily:
    /// only when `ranking_stale` (set by reprice or quarantine entry).
    std::vector<std::uint32_t> ranked;
    /// Active dirty set (sorted local positions) the in-flight reprice
    /// lanes chunk over, and the pending set begin_epoch() routes into
    /// (promoted to active at commit_epoch()).
    std::vector<std::uint32_t> dirty;
    std::vector<std::uint32_t> pending_dirty;
    /// Pending-set membership flags (dedup during routing only).
    std::vector<char> dirty_flag;
    /// Per-lane solver contexts: the shard's dirty set is split into
    /// contiguous chunks, one context per chunk, so workspaces are
    /// reused without contention.
    std::vector<core::ConvexContext> contexts;
    /// Per-round lane scratch, reused across epochs (no steady-state
    /// allocation): stats, per-position statuses, pass-A survivors.
    std::vector<LaneStats> lane_stats;
    std::vector<Status> lane_statuses;
    std::vector<std::vector<std::uint32_t>> lane_survivors;
    bool ranking_stale = true;
  };

  IncrementalScanner(market::MarketSnapshot snapshot,
                     core::ScannerConfig config, PoolCycleIndex index,
                     ShardPlan plan, WorkerPool* workers);

  /// Discards a partially staged epoch (market rollback + pending dirty
  /// clear).
  void rollback_epoch();

  /// One lane: SoA gate sweep (pass A) then the solver ladder over the
  /// survivors (pass B), over positions [begin, end) of shard s's active
  /// dirty list.
  void price_range(std::size_t s, std::size_t begin, std::size_t end,
                   std::size_t lane);

  /// Re-sorts stale per-shard rankings and K-way merges them into the
  /// global ranked view. No-op when nothing changed since the last call;
  /// the collect paths invoke it lazily so apply() never pays for
  /// rankings nobody observes between batches.
  void rebuild_ranking();

  EpochMarket market_;
  core::ScannerConfig config_;
  PoolCycleIndex index_;
  ShardPlan plan_;
  WorkerPool* workers_;  ///< nullable, not owned

  std::vector<Shard> shards_;
  std::vector<const core::Opportunity*> ranked_;
  /// True until the first merge; per-shard staleness drives re-merges
  /// after that.
  bool merge_stale_ = true;
  /// Per-pool quarantine flag (pool → 0/1), shared by all shards; the
  /// per-cycle counts live with their owning shard.
  std::vector<char> pool_quarantined_;

  /// Last-wins coalescing scratch, reused across batches (no per-batch
  /// allocation): pool → index of its final event in the current batch.
  /// Only entries for pools in the batch are read, and the first pass
  /// rewrites exactly those, so no generation stamp is needed.
  std::vector<std::uint32_t> coalesce_winner_;

  /// Pipeline state. The TaskGroup joins exactly this scanner's lanes
  /// (not the whole pool — the service keeps other work in flight);
  /// unique_ptr keeps the scanner movable.
  std::unique_ptr<TaskGroup> group_ = std::make_unique<TaskGroup>();
  std::vector<std::function<void()>> lane_tasks_;
  bool staged_ = false;     ///< begin_epoch done, commit pending
  bool in_flight_ = false;  ///< launch_reprice done, wait pending
  ApplyReport staging_report_;   ///< events/unique_pools of the staged epoch
  ApplyReport inflight_report_;  ///< report of the launched epoch
  /// Warm invalidations from quarantine entries between rounds, folded
  /// into the next harvested report.
  std::size_t pending_warm_invalidations_ = 0;
};

}  // namespace arb::runtime
