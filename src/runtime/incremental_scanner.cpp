#include "runtime/incremental_scanner.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <utility>

#include "common/error.hpp"

namespace arb::runtime {

IncrementalScanner::IncrementalScanner(market::MarketSnapshot snapshot,
                                       core::ScannerConfig config,
                                       PoolCycleIndex index,
                                       WorkerPool* workers)
    : snapshot_(std::move(snapshot)),
      config_(std::move(config)),
      index_(std::move(index)),
      workers_(workers) {
  slots_.resize(index_.cycles().size());
  warm_.resize(index_.cycles().size());
  mixed_.resize(index_.cycles().size());
  cycle_quarantine_count_.resize(index_.cycles().size(), 0);
  pool_quarantined_.resize(snapshot_.graph.pool_count(), 0);
  for (std::size_t i = 0; i < index_.cycles().size(); ++i) {
    mixed_[i] = index_.cycles()[i].all_cpmm(snapshot_.graph) ? 0 : 1;
  }
}

Result<IncrementalScanner> IncrementalScanner::create(
    market::MarketSnapshot snapshot, core::ScannerConfig config,
    WorkerPool* workers) {
  auto index = PoolCycleIndex::build(snapshot.graph, config.loop_lengths);
  if (!index) return index.error();
  IncrementalScanner scanner(std::move(snapshot), std::move(config),
                             *std::move(index), workers);
  std::vector<std::uint32_t> all(scanner.index_.cycles().size());
  std::iota(all.begin(), all.end(), 0u);
  ApplyReport initial;  // stats of the initial full pricing are discarded
  if (Status status = scanner.reprice(all, initial); !status.ok()) {
    return status.error();
  }
  scanner.rebuild_ranking();
  return scanner;
}

Result<ApplyReport> IncrementalScanner::apply(
    const std::vector<PoolUpdateEvent>& batch) {
  ApplyReport report;
  report.events = batch.size();

  // Last-wins coalescing: events carry absolute reserves, so applying
  // only each pool's final event is equivalent to applying all of them
  // in order.
  std::vector<std::uint32_t> last_event(snapshot_.graph.pool_count(),
                                        UINT32_MAX);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const PoolId pool = batch[i].pool;
    if (pool.value() >= snapshot_.graph.pool_count()) {
      return make_error(ErrorCode::kNotFound,
                        "update for unknown " + to_string(pool));
    }
    last_event[pool.value()] = static_cast<std::uint32_t>(i);
  }

  std::vector<char> dirty_flag(index_.cycles().size(), 0);
  std::vector<std::uint32_t> dirty;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (last_event[batch[i].pool.value()] != i) continue;  // superseded
    const PoolUpdateEvent& event = batch[i];
    ++report.unique_pools;
    if (event.liquidity > 0.0) {
      // Concentrated payload: absolute (liquidity, price) state.
      if (Status applied =
              snapshot_.graph.mutable_pool(event.pool).set_concentrated_state(
                  event.liquidity, event.price);
          !applied.ok()) {
        return applied.error();
      }
    } else {
      if (!(event.reserve0 > 0.0) || !(event.reserve1 > 0.0)) {
        return make_error(ErrorCode::kInvalidArgument,
                          "non-positive reserves for " + to_string(event.pool));
      }
      if (Status applied = snapshot_.graph.set_pool_reserves(
              event.pool, event.reserve0, event.reserve1);
          !applied.ok()) {
        return applied.error();
      }
    }
    for (const std::uint32_t cycle : index_.cycles_of(event.pool)) {
      if (!dirty_flag[cycle]) {
        dirty_flag[cycle] = 1;
        dirty.push_back(cycle);
      }
    }
  }
  std::sort(dirty.begin(), dirty.end());

  if (Status status = reprice(dirty, report); !status.ok()) {
    return status.error();
  }
  // Cycles skipped because they traverse a quarantined pool are not
  // counted as repriced, so the total stays the sum of the per-kind
  // splits (the parity the metrics tests pin down).
  report.repriced = report.repriced_cpmm + report.repriced_mixed;
  rebuild_ranking();
  return report;
}

void IncrementalScanner::set_quarantined(PoolId pool, bool quarantined) {
  ARB_REQUIRE(pool.value() < pool_quarantined_.size(),
              "unknown " + to_string(pool));
  char& flag = pool_quarantined_[pool.value()];
  if (static_cast<bool>(flag) == quarantined) return;
  flag = quarantined ? 1 : 0;
  for (const std::uint32_t cycle : index_.cycles_of(pool)) {
    if (quarantined) {
      if (++cycle_quarantine_count_[cycle] == 1) {
        slots_[cycle].reset();
        warm_[cycle].valid = false;
      }
    } else {
      ARB_REQUIRE(cycle_quarantine_count_[cycle] > 0,
                  "quarantine count underflow");
      --cycle_quarantine_count_[cycle];
    }
  }
}

bool IncrementalScanner::pool_quarantined(PoolId pool) const {
  ARB_REQUIRE(pool.value() < pool_quarantined_.size(),
              "unknown " + to_string(pool));
  return pool_quarantined_[pool.value()] != 0;
}

Status IncrementalScanner::reprice(const std::vector<std::uint32_t>& dirty,
                                   ApplyReport& report) {
  if (dirty.empty()) return Status::success();

  // The dirty set is partitioned into contiguous chunks, one per lane;
  // each lane owns a disjoint range of universe slots (and their warm
  // slots) plus its own solver context, so lanes never contend; the
  // graph is only read. The pool's wait_idle() provides the
  // happens-before edge back to this thread.
  const std::size_t lanes =
      (workers_ == nullptr || dirty.size() == 1)
          ? 1
          : std::min(workers_->thread_count(), dirty.size());
  if (contexts_.size() < lanes) contexts_.resize(lanes);

  struct LaneStats {
    std::size_t warm_hits = 0;
    std::size_t warm_misses = 0;
    std::uint64_t solver_iterations = 0;
    std::size_t repriced_cpmm = 0;
    std::size_t repriced_mixed = 0;
    double cpmm_us = 0.0;
    double mixed_us = 0.0;
    std::uint64_t solver_fallbacks = 0;
  };
  std::vector<LaneStats> lane_stats(lanes);
  std::vector<Status> statuses(dirty.size());

  auto price_range = [this, &dirty, &statuses, &lane_stats](
                         std::size_t begin, std::size_t end,
                         std::size_t lane) {
    core::ConvexContext& ctx = contexts_[lane];
    LaneStats& stats = lane_stats[lane];
    const bool convex =
        config_.strategy == core::StrategyKind::kConvexOptimization;
    for (std::size_t position = begin; position < end; ++position) {
      const std::uint32_t slot = dirty[position];
      if (cycle_quarantine_count_[slot] != 0) {
        // Excluded while any of its pools is quarantined: keep the slot
        // empty (and no warm start) so the ranked set matches scan_market
        // on the surviving pool set. Not accounted as repriced.
        slots_[slot].reset();
        warm_[slot].valid = false;
        continue;
      }
      const graph::Cycle& cycle = index_.cycles()[slot];
      std::optional<core::Opportunity>& out = slots_[slot];
      const bool mixed = mixed_[slot] != 0;
      const auto t0 = std::chrono::steady_clock::now();
      const auto account = [&] {
        const double us = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        (mixed ? stats.mixed_us : stats.cpmm_us) += us;
        ++(mixed ? stats.repriced_mixed : stats.repriced_cpmm);
      };
      // scan_market's filter_arbitrage gate: only the profitable
      // orientation (price product > 1) is priced at all.
      if (!(cycle.price_product(snapshot_.graph) > 1.0)) {
        out.reset();
        warm_[slot].valid = false;  // zero optimum has no interior
        account();
        continue;
      }
      ctx.warm = &warm_[slot];
      auto priced = core::evaluate_opportunity(
          snapshot_.graph, snapshot_.prices, cycle, config_, ctx);
      ctx.warm = nullptr;
      if (!priced) {
        statuses[position] = priced.error();
        out.reset();
        account();
        continue;
      }
      if (convex) {
        stats.solver_iterations += static_cast<std::uint64_t>(
            std::max(0, ctx.report.total_newton_iterations));
        if (ctx.used_fallback) ++stats.solver_fallbacks;
        // Warm starts are CPMM-only; generic (mixed) solves are neither
        // hit nor miss.
        if (config_.convex_warm_start && !ctx.used_closed_form &&
            !ctx.used_generic) {
          ++(ctx.warm_hit ? stats.warm_hits : stats.warm_misses);
        }
      }
      out = *std::move(priced);
      account();
    }
  };

  if (lanes == 1) {
    price_range(0, dirty.size(), 0);
  } else {
    const std::size_t len = dirty.size();
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const std::size_t begin = lane * len / lanes;
      const std::size_t end = (lane + 1) * len / lanes;
      if (begin == end) continue;
      if (!workers_->submit(
              [&price_range, begin, end, lane] { price_range(begin, end, lane); })) {
        // Pool shutting down or rejecting: fall back to inline execution
        // so the invariant (slots match current reserves) still holds.
        price_range(begin, end, lane);
      }
    }
    workers_->wait_idle();
  }

  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }
  for (const LaneStats& stats : lane_stats) {
    report.warm_hits += stats.warm_hits;
    report.warm_misses += stats.warm_misses;
    report.solver_iterations += stats.solver_iterations;
    report.repriced_cpmm += stats.repriced_cpmm;
    report.repriced_mixed += stats.repriced_mixed;
    report.reprice_cpmm_us += stats.cpmm_us;
    report.reprice_mixed_us += stats.mixed_us;
    report.solver_fallbacks += stats.solver_fallbacks;
  }
  return Status::success();
}

void IncrementalScanner::rebuild_ranking() {
  std::vector<std::uint32_t> present;
  present.reserve(slots_.size());
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].has_value()) present.push_back(i);
  }
  const std::vector<std::string>& keys = index_.rotation_keys();
  std::sort(present.begin(), present.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const double pa = slots_[a]->net_profit_usd;
              const double pb = slots_[b]->net_profit_usd;
              if (pa != pb) return pa > pb;
              return keys[a] < keys[b];
            });
  ranked_.clear();
  ranked_.reserve(present.size());
  for (const std::uint32_t i : present) ranked_.push_back(&*slots_[i]);
}

std::vector<core::Opportunity> IncrementalScanner::collect() const {
  std::vector<core::Opportunity> out;
  out.reserve(ranked_.size());
  for (const core::Opportunity* op : ranked_) out.push_back(*op);
  return out;
}

}  // namespace arb::runtime
