#include "runtime/incremental_scanner.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <utility>

#include "common/error.hpp"

namespace arb::runtime {

IncrementalScanner::IncrementalScanner(market::MarketSnapshot snapshot,
                                       core::ScannerConfig config,
                                       PoolCycleIndex index, ShardPlan plan,
                                       WorkerPool* workers)
    : snapshot_(std::move(snapshot)),
      config_(std::move(config)),
      index_(std::move(index)),
      plan_(std::move(plan)),
      workers_(workers) {
  view_ = market::MarketView::build(snapshot_.graph, snapshot_.prices);
  pool_quarantined_.resize(snapshot_.graph.pool_count(), 0);
  shards_.resize(plan_.shard_count());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    const std::vector<std::uint32_t>& universe = plan_.cycles_of(s);
    shard.slots.resize(universe.size());
    shard.warm.resize(universe.size());
    shard.mixed.resize(universe.size());
    shard.quarantine_count.assign(universe.size(), 0);
    shard.dirty_flag.assign(universe.size(), 0);
    for (std::size_t i = 0; i < universe.size(); ++i) {
      shard.mixed[i] =
          index_.cycles()[universe[i]].all_cpmm(snapshot_.graph) ? 0 : 1;
    }
  }
}

Result<IncrementalScanner> IncrementalScanner::create(
    market::MarketSnapshot snapshot, core::ScannerConfig config,
    WorkerPool* workers, std::size_t shards) {
  auto index = PoolCycleIndex::build(snapshot.graph, config.loop_lengths);
  if (!index) return index.error();
  auto plan = ShardPlan::build(*index, shards);
  if (!plan) return plan.error();
  IncrementalScanner scanner(std::move(snapshot), std::move(config),
                             *std::move(index), *std::move(plan), workers);
  for (Shard& shard : scanner.shards_) {
    shard.dirty.resize(shard.slots.size());
    std::iota(shard.dirty.begin(), shard.dirty.end(), 0u);
  }
  ApplyReport initial;  // stats of the initial full pricing are discarded
  if (Status status = scanner.reprice_dirty(initial); !status.ok()) {
    return status.error();
  }
  return scanner;
}

Result<ApplyReport> IncrementalScanner::apply(
    const std::vector<PoolUpdateEvent>& batch) {
  ApplyReport report;
  report.events = batch.size();

  // Last-wins coalescing: events carry absolute reserves, so applying
  // only each pool's final event is equivalent to applying all of them
  // in order.
  std::vector<std::uint32_t> last_event(snapshot_.graph.pool_count(),
                                        UINT32_MAX);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const PoolId pool = batch[i].pool;
    if (pool.value() >= snapshot_.graph.pool_count()) {
      return make_error(ErrorCode::kNotFound,
                        "update for unknown " + to_string(pool));
    }
    last_event[pool.value()] = static_cast<std::uint32_t>(i);
  }

  // Discards pending dirty scratch so a failed batch leaves the next
  // apply() with a clean slate (slots still match the current reserves).
  const auto fail = [this](Error error) -> Result<ApplyReport> {
    for (Shard& shard : shards_) {
      for (const std::uint32_t local : shard.dirty) shard.dirty_flag[local] = 0;
      shard.dirty.clear();
    }
    return error;
  };

  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (last_event[batch[i].pool.value()] != i) continue;  // superseded
    const PoolUpdateEvent& event = batch[i];
    ++report.unique_pools;
    if (event.liquidity > 0.0) {
      // Concentrated payload: absolute (liquidity, price) state.
      if (Status applied = snapshot_.graph.set_concentrated_state(
              event.pool, event.liquidity, event.price);
          !applied.ok()) {
        return fail(applied.error());
      }
    } else {
      if (!(event.reserve0 > 0.0) || !(event.reserve1 > 0.0)) {
        return fail(make_error(
            ErrorCode::kInvalidArgument,
            "non-positive reserves for " + to_string(event.pool)));
      }
      if (Status applied = snapshot_.graph.set_pool_reserves(
              event.pool, event.reserve0, event.reserve1);
          !applied.ok()) {
        return fail(applied.error());
      }
    }
    // The graph is the single writer; catch the view up pool-by-pool so
    // every shard's gate reads the post-write state.
    view_.refresh_pool(snapshot_.graph, event.pool);
    // Route the update to every shard whose cycles traverse the pool.
    for (const std::uint32_t s : plan_.shards_of_pool(event.pool)) {
      Shard& shard = shards_[s];
      for (const std::uint32_t local : plan_.sub_index(s, event.pool)) {
        if (!shard.dirty_flag[local]) {
          shard.dirty_flag[local] = 1;
          shard.dirty.push_back(local);
        }
      }
    }
  }
  view_.set_epoch(snapshot_.graph.epoch());
  for (Shard& shard : shards_) {
    std::sort(shard.dirty.begin(), shard.dirty.end());
  }

  if (Status status = reprice_dirty(report); !status.ok()) {
    return status.error();
  }
  // Cycles skipped because they traverse a quarantined pool are not
  // counted as repriced, so the total stays the sum of the per-kind
  // splits (the parity the metrics tests pin down).
  report.repriced = report.repriced_cpmm + report.repriced_mixed;
  // The ranking is NOT rebuilt here: reprice marked the touched shards
  // stale, and the next collect()/ranked() call re-sorts and merges.
  return report;
}

void IncrementalScanner::set_quarantined(PoolId pool, bool quarantined) {
  ARB_REQUIRE(pool.value() < pool_quarantined_.size(),
              "unknown " + to_string(pool));
  char& flag = pool_quarantined_[pool.value()];
  if (static_cast<bool>(flag) == quarantined) return;
  flag = quarantined ? 1 : 0;
  for (const std::uint32_t cycle : index_.cycles_of(pool)) {
    Shard& shard = shards_[plan_.shard_of(cycle)];
    const std::uint32_t local = plan_.local_of(cycle);
    if (quarantined) {
      if (++shard.quarantine_count[local] == 1) {
        shard.slots[local].reset();
        shard.warm[local].valid = false;
        shard.ranking_stale = true;
      }
    } else {
      ARB_REQUIRE(shard.quarantine_count[local] > 0,
                  "quarantine count underflow");
      --shard.quarantine_count[local];
    }
  }
}

bool IncrementalScanner::pool_quarantined(PoolId pool) const {
  ARB_REQUIRE(pool.value() < pool_quarantined_.size(),
              "unknown " + to_string(pool));
  return pool_quarantined_[pool.value()] != 0;
}

Status IncrementalScanner::reprice_dirty(ApplyReport& report) {
  report.shard_repriced.assign(shards_.size(), 0);
  std::size_t dirty_shards = 0;
  for (const Shard& shard : shards_) {
    if (!shard.dirty.empty()) ++dirty_shards;
  }
  if (dirty_shards == 0) return Status::success();

  struct LaneStats {
    std::size_t warm_hits = 0;
    std::size_t warm_misses = 0;
    std::uint64_t solver_iterations = 0;
    std::size_t repriced_cpmm = 0;
    std::size_t repriced_mixed = 0;
    double cpmm_us = 0.0;
    double mixed_us = 0.0;
    std::uint64_t solver_fallbacks = 0;
  };
  struct ShardWork {
    std::vector<LaneStats> stats;
    std::vector<Status> statuses;
  };
  std::vector<ShardWork> work(shards_.size());

  // Each lane owns a contiguous chunk of one shard's dirty list — a
  // disjoint set of that shard's slots and warm entries — plus its own
  // solver context, so lanes never contend; the graph and view are only
  // read. The pool's wait_idle() provides the happens-before edge back
  // to this thread.
  auto price_range = [this, &work](std::size_t s, std::size_t begin,
                                   std::size_t end, std::size_t lane) {
    Shard& shard = shards_[s];
    const std::vector<std::uint32_t>& universe = plan_.cycles_of(s);
    core::ConvexContext& ctx = shard.contexts[lane];
    LaneStats& stats = work[s].stats[lane];
    const bool convex =
        config_.strategy == core::StrategyKind::kConvexOptimization;
    for (std::size_t position = begin; position < end; ++position) {
      const std::uint32_t local = shard.dirty[position];
      if (shard.quarantine_count[local] != 0) {
        // Excluded while any of its pools is quarantined: keep the slot
        // empty (and no warm start) so the ranked set matches scan_market
        // on the surviving pool set. Not accounted as repriced.
        shard.slots[local].reset();
        shard.warm[local].valid = false;
        continue;
      }
      const graph::Cycle& cycle = index_.cycles()[universe[local]];
      std::optional<core::Opportunity>& out = shard.slots[local];
      const bool mixed = shard.mixed[local] != 0;
      const auto t0 = std::chrono::steady_clock::now();
      const auto account = [&] {
        const double us = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        (mixed ? stats.mixed_us : stats.cpmm_us) += us;
        ++(mixed ? stats.repriced_mixed : stats.repriced_cpmm);
      };
      // scan_market's filter_arbitrage gate: only the profitable
      // orientation (price product > 1) is priced at all. The view's
      // cached relative prices make this bit-identical to reading the
      // pools directly.
      if (!(view_.price_product(cycle) > 1.0)) {
        out.reset();
        shard.warm[local].valid = false;  // zero optimum has no interior
        account();
        continue;
      }
      ctx.warm = &shard.warm[local];
      auto priced = core::evaluate_opportunity(
          snapshot_.graph, snapshot_.prices, cycle, config_, ctx);
      ctx.warm = nullptr;
      if (!priced) {
        work[s].statuses[position] = priced.error();
        out.reset();
        account();
        continue;
      }
      if (convex) {
        stats.solver_iterations += static_cast<std::uint64_t>(
            std::max(0, ctx.report.total_newton_iterations));
        if (ctx.used_fallback) ++stats.solver_fallbacks;
        // Warm starts are CPMM-only; generic (mixed) solves are neither
        // hit nor miss.
        if (config_.convex_warm_start && !ctx.used_closed_form &&
            !ctx.used_generic) {
          ++(ctx.warm_hit ? stats.warm_hits : stats.warm_misses);
        }
      }
      out = *std::move(priced);
      account();
    }
  };

  // Lane sizing: chunk every shard's dirty list so the whole round
  // yields ~4 tasks per pool thread. Oversubscribing lets the pool's
  // queue balance load dynamically — without it each dirty shard runs as
  // one task and wait_idle() stalls on the slowest shard (per-batch
  // dirty sets are not as balanced as the static plan). Chunking is
  // performance-only: each cycle's solve is independent and warm state
  // is per-cycle, so the results never depend on the lane split.
  const std::size_t threads = workers_ ? workers_->thread_count() : 0;
  std::size_t total_dirty = 0;
  for (const Shard& shard : shards_) total_dirty += shard.dirty.size();
  const std::size_t chunk =
      threads == 0
          ? total_dirty
          : std::max<std::size_t>(1, total_dirty / (threads * 4));
  bool parallel = false;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    if (shard.dirty.empty()) continue;
    const std::size_t lanes =
        workers_ == nullptr ? 1 : (shard.dirty.size() + chunk - 1) / chunk;
    if (shard.contexts.size() < lanes) shard.contexts.resize(lanes);
    work[s].stats.resize(lanes);
    work[s].statuses.resize(shard.dirty.size());
    shard.ranking_stale = true;
    if (workers_ == nullptr || (dirty_shards == 1 && lanes == 1)) {
      price_range(s, 0, shard.dirty.size(), 0);
      continue;
    }
    const std::size_t len = shard.dirty.size();
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const std::size_t begin = lane * len / lanes;
      const std::size_t end = (lane + 1) * len / lanes;
      if (begin == end) continue;
      if (workers_->submit([&price_range, s, begin, end, lane] {
            price_range(s, begin, end, lane);
          })) {
        parallel = true;
      } else {
        // Pool shutting down or rejecting: fall back to inline execution
        // so the invariant (slots match current reserves) still holds.
        price_range(s, begin, end, lane);
      }
    }
  }
  if (parallel) workers_->wait_idle();

  for (Shard& shard : shards_) {
    for (const std::uint32_t local : shard.dirty) shard.dirty_flag[local] = 0;
    shard.dirty.clear();
  }
  for (const ShardWork& w : work) {
    for (const Status& status : w.statuses) {
      if (!status.ok()) return status;
    }
  }
  for (std::size_t s = 0; s < work.size(); ++s) {
    for (const LaneStats& stats : work[s].stats) {
      report.warm_hits += stats.warm_hits;
      report.warm_misses += stats.warm_misses;
      report.solver_iterations += stats.solver_iterations;
      report.repriced_cpmm += stats.repriced_cpmm;
      report.repriced_mixed += stats.repriced_mixed;
      report.reprice_cpmm_us += stats.cpmm_us;
      report.reprice_mixed_us += stats.mixed_us;
      report.solver_fallbacks += stats.solver_fallbacks;
      report.shard_repriced[s] += stats.repriced_cpmm + stats.repriced_mixed;
    }
  }
  return Status::success();
}

void IncrementalScanner::rebuild_ranking() {
  const std::vector<std::string>& keys = index_.rotation_keys();
  // Only shards whose slots changed re-sort; clean shards keep their
  // ranking from the previous round. If no shard changed since the last
  // merge the global view is still valid and the whole call is a no-op.
  bool changed = merge_stale_;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    if (!shard.ranking_stale) continue;
    changed = true;
    const std::vector<std::uint32_t>& universe = plan_.cycles_of(s);
    shard.ranked.clear();
    for (std::uint32_t i = 0; i < shard.slots.size(); ++i) {
      if (shard.slots[i].has_value()) shard.ranked.push_back(i);
    }
    std::sort(shard.ranked.begin(), shard.ranked.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                const double pa = shard.slots[a]->net_profit_usd;
                const double pb = shard.slots[b]->net_profit_usd;
                if (pa != pb) return pa > pb;
                return keys[universe[a]] < keys[universe[b]];
              });
    shard.ranking_stale = false;
  }
  if (!changed) return;
  merge_stale_ = false;

  // K-way merge under the same comparator. Rotation keys are unique, so
  // the comparator is a strict total order and merging the per-shard
  // sorted runs reproduces the K=1 global sort exactly.
  ranked_.clear();
  std::size_t total = 0;
  for (const Shard& shard : shards_) total += shard.ranked.size();
  ranked_.reserve(total);
  if (shards_.size() == 1) {
    const Shard& shard = shards_[0];
    for (const std::uint32_t local : shard.ranked) {
      ranked_.push_back(&*shard.slots[local]);
    }
    return;
  }
  std::vector<std::size_t> head(shards_.size(), 0);
  while (ranked_.size() < total) {
    std::size_t best = shards_.size();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (head[s] >= shards_[s].ranked.size()) continue;
      if (best == shards_.size()) {
        best = s;
        continue;
      }
      const core::Opportunity& cand =
          *shards_[s].slots[shards_[s].ranked[head[s]]];
      const core::Opportunity& lead =
          *shards_[best].slots[shards_[best].ranked[head[best]]];
      if (cand.net_profit_usd != lead.net_profit_usd) {
        if (cand.net_profit_usd > lead.net_profit_usd) best = s;
        continue;
      }
      const std::string& cand_key =
          index_.rotation_keys()[plan_.cycles_of(s)[shards_[s].ranked[head[s]]]];
      const std::string& lead_key =
          index_.rotation_keys()[plan_.cycles_of(best)
                                     [shards_[best].ranked[head[best]]]];
      if (cand_key < lead_key) best = s;
    }
    ranked_.push_back(&*shards_[best].slots[shards_[best].ranked[head[best]]]);
    ++head[best];
  }
}

void IncrementalScanner::collect_into(std::vector<core::Opportunity>& out) {
  rebuild_ranking();
  out.clear();
  out.reserve(ranked_.size());
  for (const core::Opportunity* op : ranked_) out.push_back(*op);
}

std::vector<core::Opportunity> IncrementalScanner::collect() {
  std::vector<core::Opportunity> out;
  collect_into(out);
  return out;
}

}  // namespace arb::runtime
