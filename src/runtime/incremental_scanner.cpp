#include "runtime/incremental_scanner.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <utility>

#include "common/error.hpp"

namespace arb::runtime {

IncrementalScanner::IncrementalScanner(market::MarketSnapshot snapshot,
                                       core::ScannerConfig config,
                                       PoolCycleIndex index, ShardPlan plan,
                                       WorkerPool* workers)
    : market_(std::move(snapshot)),
      config_(std::move(config)),
      index_(std::move(index)),
      plan_(std::move(plan)),
      workers_(workers) {
  const graph::TokenGraph& graph = market_.front().graph;
  const market::MarketView& view = market_.front_view();
  pool_quarantined_.resize(graph.pool_count(), 0);
  coalesce_winner_.assign(graph.pool_count(), 0);
  shards_.resize(plan_.shard_count());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    const std::vector<std::uint32_t>& universe = plan_.cycles_of(s);
    shard.slots.resize(universe.size());
    shard.warm.resize(universe.size());
    shard.mixed.resize(universe.size());
    shard.quarantine_count.assign(universe.size(), 0);
    shard.dirty_flag.assign(universe.size(), 0);
    // Flattened gate tables: pool ids and price sides of every hop, in
    // cycle order, with prefix offsets. Immutable — pool/token topology
    // never changes after build.
    shard.gate_offset.resize(universe.size() + 1);
    shard.gate_offset[0] = 0;
    for (std::size_t i = 0; i < universe.size(); ++i) {
      const graph::Cycle& cycle = index_.cycles()[universe[i]];
      shard.mixed[i] = cycle.all_cpmm(graph) ? 0 : 1;
      const std::size_t hops = cycle.length();
      for (std::size_t k = 0; k < hops; ++k) {
        const PoolId pool = cycle.pools()[k];
        shard.gate_pool.push_back(pool.value());
        shard.gate_side.push_back(
            cycle.tokens()[k] == view.token0(pool) ? 0 : 1);
      }
      shard.gate_offset[i + 1] =
          static_cast<std::uint32_t>(shard.gate_pool.size());
    }
  }
}

Result<IncrementalScanner> IncrementalScanner::create(
    market::MarketSnapshot snapshot, core::ScannerConfig config,
    WorkerPool* workers, std::size_t shards) {
  auto index = PoolCycleIndex::build(snapshot.graph, config.loop_lengths);
  if (!index) return index.error();
  auto plan = ShardPlan::build(*index, shards);
  if (!plan) return plan.error();
  IncrementalScanner scanner(std::move(snapshot), std::move(config),
                             *std::move(index), *std::move(plan), workers);
  // Initial full pricing: every cycle is dirty, one synchronous round.
  for (Shard& shard : scanner.shards_) {
    shard.dirty.resize(shard.slots.size());
    std::iota(shard.dirty.begin(), shard.dirty.end(), 0u);
  }
  scanner.launch_reprice();
  // Stats of the initial full pricing are discarded.
  if (auto initial = scanner.wait_reprice(); !initial) {
    return initial.error();
  }
  return scanner;
}

Result<ApplyReport> IncrementalScanner::apply(
    const std::vector<PoolUpdateEvent>& batch) {
  if (Status staged = begin_epoch(batch); !staged.ok()) {
    return staged.error();
  }
  commit_epoch();
  launch_reprice();
  return wait_reprice();
}

Status IncrementalScanner::begin_epoch(
    const std::vector<PoolUpdateEvent>& batch) {
  ARB_REQUIRE(!staged_, "begin_epoch with an epoch already staged");
  staging_report_ = ApplyReport{};
  staging_report_.events = batch.size();

  // Last-wins coalescing: events carry absolute reserves, so applying
  // only each pool's final event is equivalent to applying all of them
  // in order. The id check happens here, before anything mutates, so an
  // unknown pool fails the batch with both buffers untouched.
  const std::size_t pools = pool_quarantined_.size();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const PoolId pool = batch[i].pool;
    if (pool.value() >= pools) {
      return make_error(ErrorCode::kNotFound,
                        "update for unknown " + to_string(pool));
    }
    coalesce_winner_[pool.value()] = static_cast<std::uint32_t>(i);
  }

  // Catch the back buffer up to the committed front, then write the
  // batch winners into it. The front buffer — which in-flight lanes may
  // still be pricing against — is never touched.
  market_.begin_writes();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const PoolUpdateEvent& event = batch[i];
    if (coalesce_winner_[event.pool.value()] != i) continue;  // superseded
    ++staging_report_.unique_pools;
    if (Status written = market_.write(event); !written.ok()) {
      rollback_epoch();
      return written;
    }
    // Route the update to every shard whose cycles traverse the pool.
    for (const std::uint32_t s : plan_.shards_of_pool(event.pool)) {
      Shard& shard = shards_[s];
      for (const std::uint32_t local : plan_.sub_index(s, event.pool)) {
        if (!shard.dirty_flag[local]) {
          shard.dirty_flag[local] = 1;
          shard.pending_dirty.push_back(local);
        }
      }
    }
  }
  staged_ = true;
  return Status::success();
}

void IncrementalScanner::rollback_epoch() {
  market_.rollback();
  for (Shard& shard : shards_) {
    for (const std::uint32_t local : shard.pending_dirty) {
      shard.dirty_flag[local] = 0;
    }
    shard.pending_dirty.clear();
  }
  staging_report_ = ApplyReport{};
  staged_ = false;
}

void IncrementalScanner::commit_epoch() {
  ARB_REQUIRE(staged_, "commit_epoch without a staged epoch");
  ARB_REQUIRE(!in_flight_, "commit_epoch with a reprice in flight");
  market_.commit();
  for (Shard& shard : shards_) {
    // The previous wait_reprice() left the active list empty; promote
    // the pending set and clear its routing flags.
    shard.dirty.swap(shard.pending_dirty);
    for (const std::uint32_t local : shard.dirty) shard.dirty_flag[local] = 0;
    std::sort(shard.dirty.begin(), shard.dirty.end());
  }
  inflight_report_ = std::move(staging_report_);
  staging_report_ = ApplyReport{};
  staged_ = false;
}

void IncrementalScanner::price_range(std::size_t s, std::size_t begin,
                                     std::size_t end, std::size_t lane) {
  Shard& shard = shards_[s];
  const std::vector<std::uint32_t>& universe = plan_.cycles_of(s);
  core::ConvexContext& ctx = shard.contexts[lane];
  LaneStats& stats = shard.lane_stats[lane];
  std::vector<std::uint32_t>& survivors = shard.lane_survivors[lane];
  survivors.clear();
  const bool convex =
      config_.strategy == core::StrategyKind::kConvexOptimization;
  const market::MarketView& view = market_.front_view();
  const double* rel0 = view.rel_price0_data();
  const double* rel1 = view.rel_price1_data();

  // Pass A — the SoA gate: one contiguous sweep over the lane's dirty
  // cycles, computing each loop's price product straight from the dense
  // view's cached price arrays (identical factors in identical order to
  // view.price_product, hence bit-identical). Only the profitable
  // orientation (product > 1) survives into the solver ladder — the
  // filter_arbitrage gate of scan_market. One clock pair for the whole
  // sweep instead of two per gated cycle.
  std::size_t gated_cpmm = 0;
  std::size_t gated_mixed = 0;
  const auto gate_t0 = std::chrono::steady_clock::now();
  for (std::size_t position = begin; position < end; ++position) {
    const std::uint32_t local = shard.dirty[position];
    if (shard.quarantine_count[local] != 0) {
      // Excluded while any of its pools is quarantined: keep the slot
      // empty (and no warm start) so the ranked set matches scan_market
      // on the surviving pool set. Not accounted as repriced.
      shard.slots[local].reset();
      if (shard.warm[local].valid) {
        shard.warm[local].valid = false;
        ++stats.warm_invalidations;
      }
      continue;
    }
    double product = 1.0;
    for (std::uint32_t k = shard.gate_offset[local];
         k < shard.gate_offset[local + 1]; ++k) {
      const std::uint32_t pool = shard.gate_pool[k];
      product *= shard.gate_side[k] ? rel1[pool] : rel0[pool];
    }
    if (!(product > 1.0)) {
      // Profitless orientation: empty the slot but KEEP the warm start —
      // the next profitable visit resumes from the cached iterate (the
      // interior projection guards against genuine staleness).
      shard.slots[local].reset();
      ++(shard.mixed[local] != 0 ? gated_mixed : gated_cpmm);
      continue;
    }
    survivors.push_back(static_cast<std::uint32_t>(position));
  }
  if (gated_cpmm + gated_mixed > 0) {
    const double gate_us = std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() - gate_t0)
                               .count();
    const double share =
        gate_us / static_cast<double>(gated_cpmm + gated_mixed);
    stats.cpmm_us += share * static_cast<double>(gated_cpmm);
    stats.mixed_us += share * static_cast<double>(gated_mixed);
    stats.repriced_cpmm += gated_cpmm;
    stats.repriced_mixed += gated_mixed;
  }

  // Pass B — the per-cycle solver ladder over the gate's survivors,
  // unchanged: warm start / closed form / barrier / generic fallback.
  for (const std::uint32_t position : survivors) {
    const std::uint32_t local = shard.dirty[position];
    const graph::Cycle& cycle = index_.cycles()[universe[local]];
    std::optional<core::Opportunity>& out = shard.slots[local];
    const bool mixed = shard.mixed[local] != 0;
    const auto t0 = std::chrono::steady_clock::now();
    const auto account = [&] {
      const double us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      (mixed ? stats.mixed_us : stats.cpmm_us) += us;
      ++(mixed ? stats.repriced_mixed : stats.repriced_cpmm);
    };
    optim::WarmStart& warm = shard.warm[local];
    const bool was_valid = warm.valid;
    ctx.warm = &warm;
    auto priced = core::evaluate_opportunity(
        market_.front().graph, market_.front().prices, cycle, config_, ctx);
    ctx.warm = nullptr;
    if (was_valid && !warm.valid) ++stats.warm_invalidations;
    if (!priced) {
      shard.lane_statuses[position] = priced.error();
      out.reset();
      account();
      continue;
    }
    if (convex) {
      stats.solver_iterations += static_cast<std::uint64_t>(
          std::max(0, ctx.report.total_newton_iterations));
      if (ctx.used_fallback) ++stats.solver_fallbacks;
      // Closed-form and generic-routed solves are neither warm hit nor
      // miss; mixed loops that took the barrier fast path count like
      // CPMM ones.
      if (config_.convex_warm_start && !ctx.used_closed_form &&
          !ctx.used_generic) {
        ++(ctx.warm_hit ? stats.warm_hits : stats.warm_misses);
      }
      if (mixed) {
        ++(ctx.used_generic ? stats.repriced_mixed_generic
                            : stats.repriced_mixed_fast);
      }
    }
    out = *std::move(priced);
    account();
  }
}

void IncrementalScanner::launch_reprice() {
  ARB_REQUIRE(!in_flight_, "launch_reprice with a reprice in flight");
  inflight_report_.shard_repriced.assign(shards_.size(), 0);

  // Lane sizing: chunk every shard's dirty list so the whole round
  // yields ~4 tasks per pool thread. Oversubscribing lets the pool's
  // queue balance load dynamically — without it each dirty shard runs as
  // one task and the harvest stalls on the slowest shard (per-batch
  // dirty sets are not as balanced as the static plan). Chunking is
  // performance-only: each cycle's solve is independent and warm state
  // is per-cycle, so the results never depend on the lane split.
  const std::size_t threads = workers_ ? workers_->thread_count() : 0;
  std::size_t total_dirty = 0;
  for (const Shard& shard : shards_) total_dirty += shard.dirty.size();
  const std::size_t chunk =
      threads == 0
          ? std::max<std::size_t>(1, total_dirty)
          : std::max<std::size_t>(1, total_dirty / (threads * 4));
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    if (shard.dirty.empty()) {
      // No lanes this round — drop the previous round's stats so the
      // harvest aggregation sees nothing from this shard.
      shard.lane_stats.clear();
      continue;
    }
    const std::size_t len = shard.dirty.size();
    const std::size_t lanes =
        workers_ == nullptr ? 1 : (len + chunk - 1) / chunk;
    if (shard.contexts.size() < lanes) shard.contexts.resize(lanes);
    if (shard.lane_survivors.size() < lanes) shard.lane_survivors.resize(lanes);
    shard.lane_stats.assign(lanes, LaneStats{});
    shard.lane_statuses.assign(len, Status());
    shard.ranking_stale = true;
    if (workers_ == nullptr) {
      price_range(s, 0, len, 0);
      continue;
    }
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const std::size_t lane_begin = lane * len / lanes;
      const std::size_t lane_end = (lane + 1) * len / lanes;
      if (lane_begin == lane_end) continue;
      lane_tasks_.push_back([this, s, lane_begin, lane_end, lane] {
        price_range(s, lane_begin, lane_end, lane);
      });
    }
  }
  if (!lane_tasks_.empty()) {
    if (!workers_->submit_many(lane_tasks_, group_.get())) {
      // Pool shutting down or the round cannot fit: run inline so the
      // invariant (slots match committed reserves) still holds.
      for (const std::function<void()>& task : lane_tasks_) task();
      lane_tasks_.clear();
    }
  }
  in_flight_ = true;
}

Result<ApplyReport> IncrementalScanner::wait_reprice() {
  ARB_REQUIRE(in_flight_, "wait_reprice without a launched reprice");
  group_->wait();
  in_flight_ = false;

  ApplyReport report = std::move(inflight_report_);
  inflight_report_ = ApplyReport{};
  Status first_error = Status::success();
  for (Shard& shard : shards_) {
    shard.dirty.clear();  // routing flags were cleared at promotion
    for (const Status& status : shard.lane_statuses) {
      if (!status.ok() && first_error.ok()) first_error = status;
    }
    shard.lane_statuses.clear();
  }
  if (!first_error.ok()) return first_error.error();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    for (const LaneStats& stats : shards_[s].lane_stats) {
      report.warm_hits += stats.warm_hits;
      report.warm_misses += stats.warm_misses;
      report.warm_invalidations += stats.warm_invalidations;
      report.solver_iterations += stats.solver_iterations;
      report.repriced_cpmm += stats.repriced_cpmm;
      report.repriced_mixed += stats.repriced_mixed;
      report.repriced_mixed_fast += stats.repriced_mixed_fast;
      report.repriced_mixed_generic += stats.repriced_mixed_generic;
      report.reprice_cpmm_us += stats.cpmm_us;
      report.reprice_mixed_us += stats.mixed_us;
      report.solver_fallbacks += stats.solver_fallbacks;
      report.shard_repriced[s] += stats.repriced_cpmm + stats.repriced_mixed;
    }
  }
  // Cycles skipped because they traverse a quarantined pool are not
  // counted as repriced, so the total stays the sum of the per-kind
  // splits (the parity the metrics tests pin down).
  report.repriced = report.repriced_cpmm + report.repriced_mixed;
  report.warm_invalidations += pending_warm_invalidations_;
  pending_warm_invalidations_ = 0;
  // The ranking is NOT rebuilt here: reprice marked the touched shards
  // stale, and the next collect()/ranked() call re-sorts and merges.
  return report;
}

void IncrementalScanner::set_quarantined(PoolId pool, bool quarantined) {
  ARB_REQUIRE(pool.value() < pool_quarantined_.size(),
              "unknown " + to_string(pool));
  ARB_REQUIRE(!in_flight_, "set_quarantined with a reprice in flight");
  char& flag = pool_quarantined_[pool.value()];
  if (static_cast<bool>(flag) == quarantined) return;
  flag = quarantined ? 1 : 0;
  for (const std::uint32_t cycle : index_.cycles_of(pool)) {
    Shard& shard = shards_[plan_.shard_of(cycle)];
    const std::uint32_t local = plan_.local_of(cycle);
    if (quarantined) {
      if (++shard.quarantine_count[local] == 1) {
        shard.slots[local].reset();
        if (shard.warm[local].valid) {
          shard.warm[local].valid = false;
          ++pending_warm_invalidations_;
        }
        shard.ranking_stale = true;
      }
    } else {
      ARB_REQUIRE(shard.quarantine_count[local] > 0,
                  "quarantine count underflow");
      --shard.quarantine_count[local];
    }
  }
}

bool IncrementalScanner::pool_quarantined(PoolId pool) const {
  ARB_REQUIRE(pool.value() < pool_quarantined_.size(),
              "unknown " + to_string(pool));
  return pool_quarantined_[pool.value()] != 0;
}

void IncrementalScanner::rebuild_ranking() {
  const std::vector<std::string>& keys = index_.rotation_keys();
  // Only shards whose slots changed re-sort; clean shards keep their
  // ranking from the previous round. If no shard changed since the last
  // merge the global view is still valid and the whole call is a no-op.
  bool changed = merge_stale_;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    if (!shard.ranking_stale) continue;
    changed = true;
    const std::vector<std::uint32_t>& universe = plan_.cycles_of(s);
    shard.ranked.clear();
    for (std::uint32_t i = 0; i < shard.slots.size(); ++i) {
      if (shard.slots[i].has_value()) shard.ranked.push_back(i);
    }
    std::sort(shard.ranked.begin(), shard.ranked.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                const double pa = shard.slots[a]->net_profit_usd;
                const double pb = shard.slots[b]->net_profit_usd;
                if (pa != pb) return pa > pb;
                return keys[universe[a]] < keys[universe[b]];
              });
    shard.ranking_stale = false;
  }
  if (!changed) return;
  merge_stale_ = false;

  // K-way merge under the same comparator. Rotation keys are unique, so
  // the comparator is a strict total order and merging the per-shard
  // sorted runs reproduces the K=1 global sort exactly.
  ranked_.clear();
  std::size_t total = 0;
  for (const Shard& shard : shards_) total += shard.ranked.size();
  ranked_.reserve(total);
  if (shards_.size() == 1) {
    const Shard& shard = shards_[0];
    for (const std::uint32_t local : shard.ranked) {
      ranked_.push_back(&*shard.slots[local]);
    }
    return;
  }
  std::vector<std::size_t> head(shards_.size(), 0);
  while (ranked_.size() < total) {
    std::size_t best = shards_.size();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (head[s] >= shards_[s].ranked.size()) continue;
      if (best == shards_.size()) {
        best = s;
        continue;
      }
      const core::Opportunity& cand =
          *shards_[s].slots[shards_[s].ranked[head[s]]];
      const core::Opportunity& lead =
          *shards_[best].slots[shards_[best].ranked[head[best]]];
      if (cand.net_profit_usd != lead.net_profit_usd) {
        if (cand.net_profit_usd > lead.net_profit_usd) best = s;
        continue;
      }
      const std::string& cand_key =
          index_.rotation_keys()[plan_.cycles_of(s)[shards_[s].ranked[head[s]]]];
      const std::string& lead_key =
          index_.rotation_keys()[plan_.cycles_of(best)
                                     [shards_[best].ranked[head[best]]]];
      if (cand_key < lead_key) best = s;
    }
    ranked_.push_back(&*shards_[best].slots[shards_[best].ranked[head[best]]]);
    ++head[best];
  }
}

void IncrementalScanner::collect_into(std::vector<core::Opportunity>& out) {
  rebuild_ranking();
  out.clear();
  out.reserve(ranked_.size());
  for (const core::Opportunity* op : ranked_) out.push_back(*op);
}

std::vector<core::Opportunity> IncrementalScanner::collect() {
  std::vector<core::Opportunity> out;
  collect_into(out);
  return out;
}

}  // namespace arb::runtime
