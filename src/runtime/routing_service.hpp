#pragma once

/// \file routing_service.hpp
/// Best-execution queries against the live scanner service.
///
/// The scanner service maintains the committed market (epoch-buffered,
/// settled states only); this thin facade answers "swap S of X into Y"
/// by running the whole-graph router (core/router.hpp) against that
/// snapshot under the scanner lock, and publishes per-method counters
/// and an end-to-end latency histogram into the service's metric
/// registry (routing_* columns in the metrics CSV).
///
/// Queries serialize with each other (one reusable flow-solver
/// workspace, mutex-guarded) and with epoch commits (the scanner lock),
/// so every answer is computed on one consistent, fully settled market
/// state.

#include <mutex>

#include "common/result.hpp"
#include "core/router.hpp"
#include "runtime/service.hpp"

namespace arb::runtime {

class RoutingService {
 public:
  /// The scanner service must outlive this object.
  explicit RoutingService(ScannerService& service) : service_(service) {}

  RoutingService(const RoutingService&) = delete;
  RoutingService& operator=(const RoutingService&) = delete;

  /// Routes the query on the committed snapshot. Thread-safe.
  [[nodiscard]] Result<core::RouteResult> best_execution(
      const core::RouteQuery& query);

 private:
  ScannerService& service_;
  std::mutex mutex_;
  core::RouterContext ctx_;  ///< guarded by mutex_
};

}  // namespace arb::runtime
