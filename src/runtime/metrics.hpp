#pragma once

/// \file metrics.hpp
/// Built-in observability for the scanner service: lock-free counters, a
/// log-bucketed latency histogram, and a periodic snapshot struct that
/// serializes to CSV. Everything is safe to read from any thread while
/// the service is running.

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "runtime/validation.hpp"

namespace arb::runtime {

/// Histogram over positive latencies with power-of-two bucket bounds:
/// bucket b counts samples in [2^b, 2^{b+1}) microseconds (bucket 0 also
/// absorbs sub-microsecond samples). Quantiles interpolate linearly
/// inside the containing bucket, so they are estimates with bounded
/// relative error (a factor of 2 worst case), which is plenty to tell a
/// 50 µs re-price from a 5 ms one.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  void record(double microseconds);

  [[nodiscard]] std::uint64_t samples() const;
  /// q in [0, 1]. Returns 0 with no samples.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double max_us() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> max_us_bits_{0};  ///< bit_cast'ed double
};

/// Point-in-time copy of every metric the runtime exports.
struct MetricsSnapshot {
  std::uint64_t events_ingested = 0;   ///< accepted into the queue
  std::uint64_t events_dropped = 0;    ///< rejected/evicted by backpressure
  std::uint64_t events_coalesced = 0;  ///< superseded inside a batch
  std::uint64_t batches = 0;           ///< apply() rounds executed
  std::uint64_t loops_repriced = 0;    ///< dirty cycles re-optimized
  std::uint64_t queue_depth = 0;       ///< events waiting at snapshot time
  std::uint64_t solver_iterations = 0; ///< Newton iterations (convex only)
  std::uint64_t warm_hits = 0;         ///< warm-started barrier solves
  std::uint64_t warm_misses = 0;       ///< cold-started barrier solves
  std::uint64_t reprice_samples = 0;   ///< latency histogram sample count
  double reprice_p50_us = 0.0;
  double reprice_p90_us = 0.0;
  double reprice_p99_us = 0.0;
  double reprice_max_us = 0.0;

  /// Per-kind split of loops_repriced: all-CPMM loops vs. loops crossing
  /// at least one StableSwap/concentrated pool.
  std::uint64_t loops_repriced_cpmm = 0;
  std::uint64_t loops_repriced_mixed = 0;
  /// Route split of the mixed solves that survived the price gate
  /// (Convex strategy): analytic-kernel barrier fast path vs. the
  /// derivative-free generic solver (fast-path off, tick-crossing caps,
  /// degenerate hop state, or rescue). fast + generic ≤ repriced mixed —
  /// gate-rejected mixed cycles count in neither.
  std::uint64_t loops_repriced_mixed_fast = 0;
  std::uint64_t loops_repriced_mixed_generic = 0;
  /// Per-loop repricing latency by kind, sampled once per batch as that
  /// batch's mean (total kind wall time / loops of that kind). Zero when
  /// the market has no loops of that kind.
  std::uint64_t cpmm_reprice_samples = 0;
  double cpmm_reprice_p50_us = 0.0;
  double cpmm_reprice_p99_us = 0.0;
  double cpmm_reprice_max_us = 0.0;
  std::uint64_t mixed_reprice_samples = 0;
  double mixed_reprice_p50_us = 0.0;
  double mixed_reprice_p99_us = 0.0;
  double mixed_reprice_max_us = 0.0;

  /// Validation / fault-containment counters (DESIGN.md §10). Rejected
  /// events are split by RejectReason, indexed by its enum value.
  std::array<std::uint64_t, kRejectReasonCount> events_rejected{};
  std::uint64_t pools_quarantined = 0;      ///< quarantine entries (cumulative)
  std::uint64_t pools_quarantined_now = 0;  ///< in quarantine at snapshot time
  std::uint64_t resyncs = 0;                ///< quarantine releases (repricings)
  /// Barrier solves rescued by the generic derivative-free fallback (the
  /// last rung of the solver containment ladder before a typed error).
  std::uint64_t solver_fallbacks = 0;

  /// Sharded-engine observability (DESIGN.md §11). `shards` and
  /// `shard_imbalance` (max/mean pool fan-out over the ShardPlan, 1.0 =
  /// perfect split) are fixed at service start; `shard_repriced` is the
  /// cumulative per-shard share of loops_repriced. The CSV keeps a fixed
  /// schema by exporting only the min/max of the per-shard counters; the
  /// full vector is available here and in summary().
  std::uint64_t shards = 1;
  double shard_imbalance = 0.0;
  std::vector<std::uint64_t> shard_repriced;

  /// Pipelined-engine observability (DESIGN.md §12). `pipeline_depth` is
  /// fixed at service start; `epoch_lag` is the number of epochs staged
  /// or in flight behind the committed front at snapshot time (0 =
  /// fully settled); the stage histograms time the validate and
  /// write(begin_epoch) stages per batch, complementing the existing
  /// reprice histogram which times launch→harvest.
  std::uint64_t pipeline_depth = 1;
  std::uint64_t epoch_lag = 0;
  std::uint64_t stage_validate_samples = 0;
  double stage_validate_p50_us = 0.0;
  double stage_validate_p99_us = 0.0;
  std::uint64_t stage_write_samples = 0;
  double stage_write_p50_us = 0.0;
  double stage_write_p99_us = 0.0;
  /// Warm slots that went valid → invalid (quarantine entries plus
  /// solver-side invalidations); profitless gate visits no longer count.
  std::uint64_t warm_invalidations = 0;
  /// WorkerPool task-queue depth at snapshot time.
  std::uint64_t worker_queue_depth = 0;

  /// Routing-service observability: best-execution queries answered
  /// against committed snapshots, split by solve method (direct chain
  /// evaluation / water-filling bisection / flow-form barrier program),
  /// plus end-to-end query latency.
  std::uint64_t routing_queries = 0;
  std::uint64_t routing_direct = 0;
  std::uint64_t routing_water_filling = 0;
  std::uint64_t routing_flow_solves = 0;
  std::uint64_t routing_failures = 0;
  std::uint64_t routing_samples = 0;
  double routing_p50_us = 0.0;
  double routing_p99_us = 0.0;
  double routing_max_us = 0.0;

  [[nodiscard]] std::uint64_t shard_repriced_min() const;
  [[nodiscard]] std::uint64_t shard_repriced_max() const;
  [[nodiscard]] std::uint64_t events_rejected_total() const;

  /// One-line human-readable rendering.
  [[nodiscard]] std::string summary() const;

  /// CSV column names, matching append_csv_row's cell order.
  [[nodiscard]] static std::vector<std::string> csv_columns();
};

/// The live, thread-shared metric registry.
class RuntimeMetrics {
 public:
  void add_ingested(std::uint64_t n) { events_ingested_ += n; }
  void add_dropped(std::uint64_t n) { events_dropped_ += n; }
  void add_coalesced(std::uint64_t n) { events_coalesced_ += n; }
  void add_batch() { ++batches_; }
  void add_repriced(std::uint64_t n) { loops_repriced_ += n; }
  void add_solver_iterations(std::uint64_t n) { solver_iterations_ += n; }
  void add_warm_hits(std::uint64_t n) { warm_hits_ += n; }
  void add_warm_misses(std::uint64_t n) { warm_misses_ += n; }
  void set_queue_depth(std::uint64_t depth) { queue_depth_ = depth; }
  void record_reprice_latency(double microseconds) {
    reprice_latency_.record(microseconds);
  }
  void add_repriced_cpmm(std::uint64_t n) { loops_repriced_cpmm_ += n; }
  void add_repriced_mixed(std::uint64_t n) { loops_repriced_mixed_ += n; }
  void add_repriced_mixed_fast(std::uint64_t n) {
    loops_repriced_mixed_fast_ += n;
  }
  void add_repriced_mixed_generic(std::uint64_t n) {
    loops_repriced_mixed_generic_ += n;
  }
  void record_cpmm_reprice_latency(double microseconds) {
    cpmm_reprice_latency_.record(microseconds);
  }
  void record_mixed_reprice_latency(double microseconds) {
    mixed_reprice_latency_.record(microseconds);
  }
  void add_rejected(RejectReason reason) {
    ++events_rejected_[static_cast<std::size_t>(reason)];
  }
  void add_quarantine_entered() { ++pools_quarantined_; }
  void set_quarantined_now(std::uint64_t n) { pools_quarantined_now_ = n; }
  void add_resync() { ++resyncs_; }
  void add_solver_fallbacks(std::uint64_t n) { solver_fallbacks_ += n; }

  /// Sizes the per-shard counters and records the plan's static gauges.
  /// Must be called before the consumer thread starts (the vector of
  /// atomics is resized, not locked).
  void set_shard_plan(std::size_t shards, double imbalance);
  void add_shard_repriced(std::size_t shard, std::uint64_t n) {
    shard_repriced_[shard] += n;
  }

  /// Fixed at service start, like set_shard_plan.
  void set_pipeline_depth(std::uint64_t depth) { pipeline_depth_ = depth; }
  void set_epoch_lag(std::uint64_t lag) { epoch_lag_ = lag; }
  void add_warm_invalidations(std::uint64_t n) { warm_invalidations_ += n; }
  void set_worker_queue_depth(std::uint64_t depth) {
    worker_queue_depth_ = depth;
  }
  void record_validate_latency(double microseconds) {
    stage_validate_latency_.record(microseconds);
  }
  void record_write_latency(double microseconds) {
    stage_write_latency_.record(microseconds);
  }

  void add_routing_query() { ++routing_queries_; }
  void add_routing_direct() { ++routing_direct_; }
  void add_routing_water_filling() { ++routing_water_filling_; }
  void add_routing_flow_solve() { ++routing_flow_solves_; }
  void add_routing_failure() { ++routing_failures_; }
  void record_routing_latency(double microseconds) {
    routing_latency_.record(microseconds);
  }

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  std::atomic<std::uint64_t> events_ingested_{0};
  std::atomic<std::uint64_t> events_dropped_{0};
  std::atomic<std::uint64_t> events_coalesced_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> loops_repriced_{0};
  std::atomic<std::uint64_t> queue_depth_{0};
  std::atomic<std::uint64_t> solver_iterations_{0};
  std::atomic<std::uint64_t> warm_hits_{0};
  std::atomic<std::uint64_t> warm_misses_{0};
  std::atomic<std::uint64_t> loops_repriced_cpmm_{0};
  std::atomic<std::uint64_t> loops_repriced_mixed_{0};
  std::atomic<std::uint64_t> loops_repriced_mixed_fast_{0};
  std::atomic<std::uint64_t> loops_repriced_mixed_generic_{0};
  std::array<std::atomic<std::uint64_t>, kRejectReasonCount>
      events_rejected_{};
  std::atomic<std::uint64_t> pools_quarantined_{0};
  std::atomic<std::uint64_t> pools_quarantined_now_{0};
  std::atomic<std::uint64_t> resyncs_{0};
  std::atomic<std::uint64_t> solver_fallbacks_{0};
  std::uint64_t shards_ = 1;
  double shard_imbalance_ = 0.0;
  std::vector<std::atomic<std::uint64_t>> shard_repriced_;
  std::uint64_t pipeline_depth_ = 1;
  std::atomic<std::uint64_t> epoch_lag_{0};
  std::atomic<std::uint64_t> warm_invalidations_{0};
  std::atomic<std::uint64_t> worker_queue_depth_{0};
  std::atomic<std::uint64_t> routing_queries_{0};
  std::atomic<std::uint64_t> routing_direct_{0};
  std::atomic<std::uint64_t> routing_water_filling_{0};
  std::atomic<std::uint64_t> routing_flow_solves_{0};
  std::atomic<std::uint64_t> routing_failures_{0};
  LatencyHistogram routing_latency_;
  LatencyHistogram reprice_latency_;
  LatencyHistogram cpmm_reprice_latency_;
  LatencyHistogram mixed_reprice_latency_;
  LatencyHistogram stage_validate_latency_;
  LatencyHistogram stage_write_latency_;
};

/// Writes snapshots as CSV (header + one row per snapshot).
[[nodiscard]] Status write_metrics_csv(
    const std::vector<MetricsSnapshot>& snapshots, const std::string& path);

}  // namespace arb::runtime
