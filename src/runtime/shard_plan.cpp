#include "runtime/shard_plan.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"

namespace arb::runtime {
namespace {

/// FNV-1a over the canonical rotation key: stable across platforms and
/// runs (the key is a plain string), so shard assignment is part of the
/// reproducibility contract.
std::uint64_t fnv1a(const std::string& key) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : key) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

Result<ShardPlan> ShardPlan::build(const PoolCycleIndex& index,
                                   std::size_t shards) {
  if (shards == 0) {
    return make_error(ErrorCode::kInvalidArgument,
                      "shard plan needs at least one shard");
  }
  ShardPlan plan;
  const std::size_t cycles = index.cycles().size();
  plan.shard_of_.resize(cycles);
  plan.local_of_.resize(cycles);
  plan.loads_.assign(shards, 0);

  // Initial assignment: hash of the rotation key. Spreads any pool's
  // fan-out across shards without looking at reserves or load.
  for (std::size_t i = 0; i < cycles; ++i) {
    plan.shard_of_[i] = static_cast<std::uint32_t>(
        fnv1a(index.rotation_keys()[i]) % shards);
    plan.loads_[plan.shard_of_[i]] += index.cycles()[i].length();
  }

  // Greedy balance pass: move one cycle at a time from the heaviest to
  // the lightest shard while that strictly narrows the spread. Each
  // move picks the largest movable cycle (ties → lowest universe index)
  // so the pass terminates quickly; the iteration cap is a safety net,
  // not a tuning knob. Everything here is a deterministic function of
  // the universe, so two builds always agree.
  if (shards > 1 && cycles > 0) {
    for (std::size_t iteration = 0; iteration < cycles; ++iteration) {
      std::size_t heavy = 0;
      std::size_t light = 0;
      for (std::size_t s = 1; s < shards; ++s) {
        if (plan.loads_[s] > plan.loads_[heavy]) heavy = s;
        if (plan.loads_[s] < plan.loads_[light]) light = s;
      }
      const std::size_t spread = plan.loads_[heavy] - plan.loads_[light];
      // Moving a cycle of length L changes the spread to |spread - 2L|
      // at best; only L < spread strictly improves.
      std::size_t best_cycle = cycles;
      std::size_t best_length = 0;
      for (std::size_t i = 0; i < cycles; ++i) {
        if (plan.shard_of_[i] != heavy) continue;
        const std::size_t length = index.cycles()[i].length();
        if (length < spread && length > best_length) {
          best_length = length;
          best_cycle = i;
        }
      }
      if (best_cycle == cycles) break;  // no improving move left
      plan.shard_of_[best_cycle] = static_cast<std::uint32_t>(light);
      plan.loads_[heavy] -= best_length;
      plan.loads_[light] += best_length;
    }
  }

  // Materialize per-shard cycle lists (ascending universe order — the
  // same relative order the single-shard scanner walks) and the local
  // positions.
  plan.cycles_of_.assign(shards, {});
  for (std::size_t i = 0; i < cycles; ++i) {
    std::vector<std::uint32_t>& list = plan.cycles_of_[plan.shard_of_[i]];
    plan.local_of_[i] = static_cast<std::uint32_t>(list.size());
    list.push_back(static_cast<std::uint32_t>(i));
  }

  // Routing tables: pool → shards touching it, and per-shard pool →
  // local dirty set. Built from the inverted index so they inherit its
  // ascending order.
  const std::size_t pools = index.pool_count();
  plan.shards_of_pool_.assign(pools, {});
  plan.sub_index_.assign(shards, std::vector<std::vector<std::uint32_t>>(pools));
  for (std::size_t p = 0; p < pools; ++p) {
    const PoolId pool{static_cast<PoolId::underlying_type>(p)};
    for (const std::uint32_t cycle : index.cycles_of(pool)) {
      const std::uint32_t s = plan.shard_of_[cycle];
      std::vector<std::uint32_t>& routed = plan.shards_of_pool_[p];
      if (routed.empty() || routed.back() != s) {
        if (std::find(routed.begin(), routed.end(), s) == routed.end()) {
          routed.push_back(s);
        }
      }
      plan.sub_index_[s][p].push_back(plan.local_of_[cycle]);
    }
    std::sort(plan.shards_of_pool_[p].begin(), plan.shards_of_pool_[p].end());
  }
  return plan;
}

const std::vector<std::uint32_t>& ShardPlan::shards_of_pool(
    PoolId pool) const {
  ARB_REQUIRE(pool.value() < shards_of_pool_.size(), "unknown pool");
  return shards_of_pool_[pool.value()];
}

const std::vector<std::uint32_t>& ShardPlan::sub_index(std::size_t s,
                                                       PoolId pool) const {
  ARB_REQUIRE(s < sub_index_.size(), "unknown shard");
  ARB_REQUIRE(pool.value() < sub_index_[s].size(), "unknown pool");
  return sub_index_[s][pool.value()];
}

std::uint32_t ShardPlan::owner_of_pool(PoolId pool) const {
  const std::vector<std::uint32_t>& routed = shards_of_pool(pool);
  if (!routed.empty()) return routed.front();
  return static_cast<std::uint32_t>(pool.value() % shard_count());
}

double ShardPlan::imbalance() const {
  std::size_t total = 0;
  std::size_t max_load = 0;
  for (const std::size_t load : loads_) {
    total += load;
    max_load = std::max(max_load, load);
  }
  if (total == 0) return 0.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(loads_.size());
  return static_cast<double>(max_load) / mean;
}

}  // namespace arb::runtime
