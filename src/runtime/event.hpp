#pragma once

/// \file event.hpp
/// The streaming runtime's event vocabulary.
///
/// A `PoolUpdateEvent` carries the *absolute* post-update reserves of one
/// pool, not a delta. Absolute state makes event application idempotent
/// and lets a burst of updates to the same pool coalesce to the last one
/// with no loss of information — the property the service's batching
/// relies on.

#include <cstdint>
#include <optional>

#include "common/types.hpp"

namespace arb::runtime {

/// One observed pool state change.
struct PoolUpdateEvent {
  PoolId pool;
  Amount reserve0 = 0.0;
  Amount reserve1 = 0.0;
  /// Producer-assigned, monotone per stream (diagnostics only; ordering
  /// is established by queue position).
  std::uint64_t sequence = 0;
  /// Per-kind payload. Reserve-based pools (CPMM, StableSwap) use the
  /// reserve fields above and leave these at zero. A concentrated
  /// position update instead carries its absolute (liquidity, price)
  /// state here; liquidity > 0 marks the event as concentrated. Trailing
  /// position keeps `{pool, r0, r1, seq}` aggregate initialization valid.
  double liquidity = 0.0;
  double price = 0.0;
};

/// Pull-based producer of pool updates (a chain indexer, a replay of a
/// historical snapshot, a synthetic load generator, ...).
class UpdateStream {
 public:
  virtual ~UpdateStream() = default;

  /// Next event, or nullopt once the stream is exhausted.
  [[nodiscard]] virtual std::optional<PoolUpdateEvent> next() = 0;
};

}  // namespace arb::runtime
