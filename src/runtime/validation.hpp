#pragma once

/// \file validation.hpp
/// The runtime's event-validation and quarantine stage.
///
/// A live feed misbehaves in ways a snapshot never does: corrupted
/// payloads (NaN / negative / zero reserves), payloads of the wrong kind
/// for the target pool, duplicated or reordered events, and stale
/// retransmissions. Before PR 4, any of these either killed the
/// `ScannerService` consumer (hard error from `IncrementalScanner::apply`)
/// or silently poisoned scanner state. The `EventValidator` sits between
/// the queue and the scanner: every event is checked against the pool's
/// immutable shape (kind, concentrated range) and its per-pool sequence
/// history, and rejected events are counted by typed `RejectReason`
/// instead of propagating.
///
/// Quarantine state machine (DESIGN.md §10): repeated *payload*
/// corruption on one pool — `quarantine_strikes` consecutive malformed
/// events — moves the pool into quarantine. While quarantined, the pool's
/// cycles are excluded from the ranked set (the scanner keeps parity with
/// `scan_market` on the surviving pool set), but well-formed events are
/// still applied to the graph so state stays fresh. The pool is released
/// after a run of consecutive valid events whose required length grows
/// exponentially with each quarantine entry (capped); the releasing event
/// triggers a full re-pricing resync of the pool's cycles.
///
/// The validator is deliberately clock-free: strikes, backoff and release
/// are counted in events, so every trajectory is reproducible from the
/// event stream alone (the property the fault-injection suite relies on).

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/token_graph.hpp"
#include "market/view.hpp"
#include "runtime/event.hpp"

namespace arb::runtime {

/// Why an event was rejected. Values index metric counters — keep the
/// order stable and `kStaleSequence` last (see kRejectReasonCount).
enum class RejectReason : std::uint8_t {
  kUnknownPool = 0,   ///< pool id beyond the snapshot's pool count
  kNonFinite = 1,     ///< NaN or infinite reserve / liquidity / price
  kNonPositive = 2,   ///< zero or negative reserve or price
  kWrongKind = 3,     ///< payload kind does not match the pool kind
  kOutOfRange = 4,    ///< concentrated price outside the position range
  kStaleSequence = 5, ///< sequence not newer than the last accepted one
};
inline constexpr std::size_t kRejectReasonCount = 6;

[[nodiscard]] const char* to_string(RejectReason reason);

struct ValidationConfig {
  /// Reject events whose sequence is not strictly greater than the last
  /// accepted sequence for the same pool (catches duplicates, reorders
  /// and stale retransmissions — safe because events carry absolute
  /// state, so the newest accepted event is always the right one).
  bool sequence_check = true;
  /// Consecutive payload-invalid events that quarantine a pool. Stale
  /// and unknown-pool rejects never count: they are transport artifacts,
  /// not evidence the pool's feed is corrupt.
  std::uint32_t quarantine_strikes = 3;
  /// Consecutive valid events required to release a freshly quarantined
  /// pool. Doubles on every re-entry (capped below) — the capped
  /// exponential backoff of the resync path.
  std::uint64_t base_backoff = 8;
  std::uint64_t max_backoff = 256;
};

/// What the validator decided about one event.
struct EventVerdict {
  bool accepted = true;
  /// Valid only when !accepted.
  RejectReason reason = RejectReason::kUnknownPool;
  /// The target pool is quarantined *after* this event was processed
  /// (accepted events for quarantined pools update graph state but their
  /// cycles stay excluded).
  bool pool_quarantined = false;
  /// This event's strike pushed the pool into quarantine.
  bool entered_quarantine = false;
  /// This (accepted) event completed the backoff run and released the
  /// pool — the caller re-prices all its cycles (a resync).
  bool released_quarantine = false;
};

/// Sequential, deterministic validation over one event stream. Not
/// thread-safe; the scanner service drives it from the consumer thread.
class EventValidator {
 public:
  /// Captures each pool's immutable shape (kind and, for concentrated
  /// positions, the price range) from the snapshot's graph. Updates
  /// never change a pool's shape, so the capture stays valid for the
  /// stream's lifetime.
  explicit EventValidator(const graph::TokenGraph& graph,
                          const ValidationConfig& config = {});

  /// Same capture from a dense MarketView — the sharded service uses
  /// this so validation never touches the pool variants.
  explicit EventValidator(const market::MarketView& view,
                          const ValidationConfig& config = {});

  /// Validates one event and advances the per-pool state machine.
  [[nodiscard]] EventVerdict check(const PoolUpdateEvent& event);

  [[nodiscard]] bool quarantined(PoolId pool) const;
  [[nodiscard]] std::size_t quarantined_count() const { return quarantined_; }
  /// Ascending pool ids currently in quarantine.
  [[nodiscard]] std::vector<PoolId> quarantined_pools() const;
  /// Valid-event run length required to release the pool the next time
  /// it is (or currently is) quarantined.
  [[nodiscard]] std::uint64_t backoff_of(PoolId pool) const;

  [[nodiscard]] const ValidationConfig& config() const { return config_; }

 private:
  /// Immutable per-pool facts the payload check needs.
  struct PoolShape {
    amm::PoolKind kind = amm::PoolKind::kCpmm;
    double p_lo = 0.0;  ///< concentrated only
    double p_hi = 0.0;  ///< concentrated only
  };
  struct PoolState {
    std::uint64_t last_sequence = 0;
    bool has_sequence = false;
    std::uint32_t strikes = 0;       ///< consecutive payload rejects
    std::uint32_t quarantines = 0;   ///< times entered (backoff exponent)
    std::uint64_t valid_streak = 0;  ///< consecutive valid while quarantined
    bool quarantined = false;
  };

  /// Payload well-formedness against the pool's shape. Returns true and
  /// sets \p reason on rejection.
  [[nodiscard]] bool payload_invalid(const PoolUpdateEvent& event,
                                     const PoolShape& shape,
                                     RejectReason& reason) const;
  [[nodiscard]] std::uint64_t backoff_for(std::uint32_t quarantines) const;

  ValidationConfig config_;
  std::vector<PoolShape> shapes_;
  std::vector<PoolState> states_;
  std::size_t quarantined_ = 0;
};

/// Validation state sharded by pool owner (DESIGN.md §12): one
/// EventValidator per shard, each exclusively owning the strike /
/// sequence / quarantine state of the pools routed to it, so the
/// validation stage carries no state shared across shards. Because the
/// per-pool state machine reads nothing but that pool's own event
/// subsequence, routing by owner leaves every verdict bit-identical to
/// a single shared validator — the differential suite's contract.
///
/// Like EventValidator, not thread-safe per shard; the service's
/// consumer drives it in stream order (per-pool order is what the state
/// machines observe, and the per-shard ingress queues preserve it).
class ShardedValidator {
 public:
  /// `owners[p]` names the owning shard of pool p (the ShardPlan's
  /// `owner_of_pool`); ids beyond the vector route to shard 0, whose
  /// validator rejects them as kUnknownPool.
  ShardedValidator(const market::MarketView& view,
                   const ValidationConfig& config,
                   std::vector<std::uint32_t> owners, std::size_t shards);

  /// Validates one event against its owner shard's state machine.
  [[nodiscard]] EventVerdict check(const PoolUpdateEvent& event);

  [[nodiscard]] std::uint32_t owner_of(PoolId pool) const {
    return pool.value() < owners_.size() ? owners_[pool.value()] : 0;
  }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  /// The per-shard validator (diagnostics and tests).
  [[nodiscard]] const EventValidator& shard(std::size_t s) const {
    return shards_[s];
  }

  [[nodiscard]] bool quarantined(PoolId pool) const;
  /// Total pools in quarantine across all shards.
  [[nodiscard]] std::size_t quarantined_count() const;
  /// Ascending pool ids currently in quarantine (ownership partitions
  /// the pools, so the per-shard lists merge without duplicates).
  [[nodiscard]] std::vector<PoolId> quarantined_pools() const;
  [[nodiscard]] std::uint64_t backoff_of(PoolId pool) const;

  [[nodiscard]] const ValidationConfig& config() const {
    return shards_.front().config();
  }

 private:
  std::vector<EventValidator> shards_;
  std::vector<std::uint32_t> owners_;  ///< pool value → owning shard
};

}  // namespace arb::runtime
