#include "runtime/validation.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace arb::runtime {

const char* to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::kUnknownPool:
      return "unknown_pool";
    case RejectReason::kNonFinite:
      return "non_finite";
    case RejectReason::kNonPositive:
      return "non_positive";
    case RejectReason::kWrongKind:
      return "wrong_kind";
    case RejectReason::kOutOfRange:
      return "out_of_range";
    case RejectReason::kStaleSequence:
      return "stale_sequence";
  }
  return "unknown_reason";
}

EventValidator::EventValidator(const graph::TokenGraph& graph,
                               const ValidationConfig& config)
    : config_(config) {
  shapes_.reserve(graph.pool_count());
  for (const amm::AnyPool& pool : graph.pools()) {
    PoolShape shape;
    shape.kind = pool.kind();
    if (shape.kind == amm::PoolKind::kConcentrated) {
      shape.p_lo = pool.concentrated().p_lo();
      shape.p_hi = pool.concentrated().p_hi();
    }
    shapes_.push_back(shape);
  }
  states_.resize(shapes_.size());
}

EventValidator::EventValidator(const market::MarketView& view,
                               const ValidationConfig& config)
    : config_(config) {
  shapes_.reserve(view.pool_count());
  for (std::size_t i = 0; i < view.pool_count(); ++i) {
    const PoolId pool{static_cast<PoolId::underlying_type>(i)};
    PoolShape shape;
    shape.kind = view.kind(pool);
    if (shape.kind == amm::PoolKind::kConcentrated) {
      shape.p_lo = view.price_lo(pool);
      shape.p_hi = view.price_hi(pool);
    }
    shapes_.push_back(shape);
  }
  states_.resize(shapes_.size());
}

bool EventValidator::payload_invalid(const PoolUpdateEvent& event,
                                     const PoolShape& shape,
                                     RejectReason& reason) const {
  // Written as !(x > 0) rather than x <= 0 so NaN takes the non-finite
  // branch instead of slipping past a comparison that is always false.
  if (!std::isfinite(event.reserve0) || !std::isfinite(event.reserve1) ||
      !std::isfinite(event.liquidity) || !std::isfinite(event.price)) {
    reason = RejectReason::kNonFinite;
    return true;
  }
  const bool concentrated_payload = event.liquidity > 0.0;
  if (shape.kind == amm::PoolKind::kConcentrated) {
    if (!concentrated_payload) {
      // liquidity < 0 is a corrupted concentrated payload, liquidity == 0
      // is a reserve payload aimed at the wrong pool.
      reason = event.liquidity < 0.0 ? RejectReason::kNonPositive
                                     : RejectReason::kWrongKind;
      return true;
    }
    if (!(event.price > 0.0)) {
      reason = RejectReason::kNonPositive;
      return true;
    }
    // set_concentrated_state requires the open range; mirror it exactly
    // so every accepted event is guaranteed to apply cleanly.
    if (!(event.price > shape.p_lo) || !(event.price < shape.p_hi)) {
      reason = RejectReason::kOutOfRange;
      return true;
    }
    return false;
  }
  if (concentrated_payload || event.price != 0.0) {
    reason = RejectReason::kWrongKind;
    return true;
  }
  if (event.liquidity < 0.0 || !(event.reserve0 > 0.0) ||
      !(event.reserve1 > 0.0)) {
    reason = RejectReason::kNonPositive;
    return true;
  }
  return false;
}

std::uint64_t EventValidator::backoff_for(std::uint32_t quarantines) const {
  std::uint64_t backoff = std::max<std::uint64_t>(1, config_.base_backoff);
  const std::uint64_t cap =
      std::max<std::uint64_t>(backoff, config_.max_backoff);
  for (std::uint32_t i = 1; i < quarantines && backoff < cap; ++i) {
    backoff = std::min(cap, backoff * 2);
  }
  return backoff;
}

EventVerdict EventValidator::check(const PoolUpdateEvent& event) {
  EventVerdict verdict;
  if (event.pool.value() >= shapes_.size()) {
    verdict.accepted = false;
    verdict.reason = RejectReason::kUnknownPool;
    return verdict;
  }
  const PoolShape& shape = shapes_[event.pool.value()];
  PoolState& state = states_[event.pool.value()];

  RejectReason reason = RejectReason::kUnknownPool;
  if (payload_invalid(event, shape, reason)) {
    verdict.accepted = false;
    verdict.reason = reason;
    // A malformed payload is evidence the pool's feed is corrupt: strike,
    // reset any release progress, quarantine at the threshold.
    state.valid_streak = 0;
    if (!state.quarantined &&
        ++state.strikes >= config_.quarantine_strikes) {
      state.quarantined = true;
      state.strikes = 0;
      ++state.quarantines;
      ++quarantined_;
      verdict.entered_quarantine = true;
    }
    verdict.pool_quarantined = state.quarantined;
    return verdict;
  }

  if (config_.sequence_check && state.has_sequence &&
      event.sequence <= state.last_sequence) {
    // Duplicate / reordered / stale retransmission. Not a strike (the
    // payload itself is fine) and not release progress either — a
    // quarantined pool recovers on fresh data only.
    verdict.accepted = false;
    verdict.reason = RejectReason::kStaleSequence;
    verdict.pool_quarantined = state.quarantined;
    return verdict;
  }
  state.last_sequence = event.sequence;
  state.has_sequence = true;
  state.strikes = 0;

  if (state.quarantined) {
    if (++state.valid_streak >= backoff_for(state.quarantines)) {
      state.quarantined = false;
      state.valid_streak = 0;
      --quarantined_;
      verdict.released_quarantine = true;
    }
  }
  verdict.pool_quarantined = state.quarantined;
  return verdict;
}

bool EventValidator::quarantined(PoolId pool) const {
  ARB_REQUIRE(pool.value() < states_.size(), "unknown pool");
  return states_[pool.value()].quarantined;
}

std::vector<PoolId> EventValidator::quarantined_pools() const {
  std::vector<PoolId> out;
  out.reserve(quarantined_);
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (states_[i].quarantined) out.push_back(PoolId(static_cast<std::uint32_t>(i)));
  }
  return out;
}

std::uint64_t EventValidator::backoff_of(PoolId pool) const {
  ARB_REQUIRE(pool.value() < states_.size(), "unknown pool");
  const PoolState& state = states_[pool.value()];
  return backoff_for(std::max<std::uint32_t>(1, state.quarantines));
}

ShardedValidator::ShardedValidator(const market::MarketView& view,
                                   const ValidationConfig& config,
                                   std::vector<std::uint32_t> owners,
                                   std::size_t shards)
    : owners_(std::move(owners)) {
  ARB_REQUIRE(shards >= 1, "sharded validator needs at least one shard");
  for (const std::uint32_t owner : owners_) {
    ARB_REQUIRE(owner < shards, "pool owner beyond shard count");
  }
  // Every shard captures the full shape table (immutable, cheap); only
  // the mutable per-pool state is exclusive, by construction of the
  // owner routing below.
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.emplace_back(view, config);
  }
}

EventVerdict ShardedValidator::check(const PoolUpdateEvent& event) {
  return shards_[owner_of(event.pool)].check(event);
}

bool ShardedValidator::quarantined(PoolId pool) const {
  return shards_[owner_of(pool)].quarantined(pool);
}

std::size_t ShardedValidator::quarantined_count() const {
  std::size_t total = 0;
  for (const EventValidator& shard : shards_) {
    total += shard.quarantined_count();
  }
  return total;
}

std::vector<PoolId> ShardedValidator::quarantined_pools() const {
  std::vector<PoolId> out;
  for (const EventValidator& shard : shards_) {
    const std::vector<PoolId> pools = shard.quarantined_pools();
    out.insert(out.end(), pools.begin(), pools.end());
  }
  std::sort(out.begin(), out.end(),
            [](PoolId a, PoolId b) { return a.value() < b.value(); });
  return out;
}

std::uint64_t ShardedValidator::backoff_of(PoolId pool) const {
  return shards_[owner_of(pool)].backoff_of(pool);
}

}  // namespace arb::runtime
