#include "runtime/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/csv.hpp"
#include "common/error.hpp"

namespace arb::runtime {
namespace {

std::size_t bucket_of(double microseconds) {
  if (!(microseconds >= 1.0)) return 0;
  const auto us = static_cast<std::uint64_t>(microseconds);
  const std::size_t b = std::bit_width(us) - 1;  // floor(log2(us))
  return std::min(b, LatencyHistogram::kBuckets - 1);
}

}  // namespace

void LatencyHistogram::record(double microseconds) {
  if (microseconds < 0.0 || std::isnan(microseconds)) return;
  counts_[bucket_of(microseconds)].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t seen = max_us_bits_.load(std::memory_order_relaxed);
  while (microseconds > std::bit_cast<double>(seen) &&
         !max_us_bits_.compare_exchange_weak(
             seen, std::bit_cast<std::uint64_t>(microseconds),
             std::memory_order_relaxed)) {
  }
}

std::uint64_t LatencyHistogram::samples() const {
  return total_.load(std::memory_order_relaxed);
}

double LatencyHistogram::max_us() const {
  return std::bit_cast<double>(max_us_bits_.load(std::memory_order_relaxed));
}

double LatencyHistogram::quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  std::array<std::uint64_t, kBuckets> counts;
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    counts[b] = counts_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (counts[b] == 0) continue;
    if (static_cast<double>(seen + counts[b]) >= rank) {
      const double lo = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b));
      const double hi = std::ldexp(1.0, static_cast<int>(b) + 1);
      const double within =
          (rank - static_cast<double>(seen)) / static_cast<double>(counts[b]);
      // The true sample never exceeds the observed maximum; clamp the
      // bucket interpolation so high quantiles stay <= max_us().
      return std::min(lo + within * (hi - lo), max_us());
    }
    seen += counts[b];
  }
  return max_us();
}

std::uint64_t MetricsSnapshot::events_rejected_total() const {
  std::uint64_t total = 0;
  for (const std::uint64_t n : events_rejected) total += n;
  return total;
}

std::uint64_t MetricsSnapshot::shard_repriced_min() const {
  std::uint64_t lo = UINT64_MAX;
  for (const std::uint64_t n : shard_repriced) lo = std::min(lo, n);
  return shard_repriced.empty() ? 0 : lo;
}

std::uint64_t MetricsSnapshot::shard_repriced_max() const {
  std::uint64_t hi = 0;
  for (const std::uint64_t n : shard_repriced) hi = std::max(hi, n);
  return hi;
}

void RuntimeMetrics::set_shard_plan(std::size_t shards, double imbalance) {
  shards_ = shards;
  shard_imbalance_ = imbalance;
  // Atomics are neither copyable nor movable; swap in a fresh buffer of
  // value-initialized counters instead of resizing element-wise.
  shard_repriced_ = std::vector<std::atomic<std::uint64_t>>(shards);
}

std::string MetricsSnapshot::summary() const {
  char buffer[1152];
  std::snprintf(buffer, sizeof(buffer),
                "ingested=%llu dropped=%llu coalesced=%llu batches=%llu "
                "repriced=%llu (cpmm=%llu mixed=%llu fast=%llu gen=%llu) "
                "depth=%llu "
                "newton=%llu warm=%llu/%llu warm_inval=%llu "
                "reprice_us{p50=%.1f p90=%.1f p99=%.1f max=%.1f n=%llu} "
                "loop_us{cpmm_p50=%.1f mixed_p50=%.1f} "
                "stage_us{validate_p50=%.1f write_p50=%.1f} "
                "pipeline{depth=%llu lag=%llu wq=%llu} "
                "rejected=%llu quarantined=%llu/%llu resyncs=%llu "
                "fallbacks=%llu "
                "shards=%llu imbalance=%.2f shard_repriced=[%llu..%llu] "
                "routing{q=%llu direct=%llu wf=%llu flow=%llu fail=%llu "
                "p50=%.1f p99=%.1f}",
                static_cast<unsigned long long>(events_ingested),
                static_cast<unsigned long long>(events_dropped),
                static_cast<unsigned long long>(events_coalesced),
                static_cast<unsigned long long>(batches),
                static_cast<unsigned long long>(loops_repriced),
                static_cast<unsigned long long>(loops_repriced_cpmm),
                static_cast<unsigned long long>(loops_repriced_mixed),
                static_cast<unsigned long long>(loops_repriced_mixed_fast),
                static_cast<unsigned long long>(loops_repriced_mixed_generic),
                static_cast<unsigned long long>(queue_depth),
                static_cast<unsigned long long>(solver_iterations),
                static_cast<unsigned long long>(warm_hits),
                static_cast<unsigned long long>(warm_hits + warm_misses),
                static_cast<unsigned long long>(warm_invalidations),
                reprice_p50_us, reprice_p90_us, reprice_p99_us,
                reprice_max_us,
                static_cast<unsigned long long>(reprice_samples),
                cpmm_reprice_p50_us, mixed_reprice_p50_us,
                stage_validate_p50_us, stage_write_p50_us,
                static_cast<unsigned long long>(pipeline_depth),
                static_cast<unsigned long long>(epoch_lag),
                static_cast<unsigned long long>(worker_queue_depth),
                static_cast<unsigned long long>(events_rejected_total()),
                static_cast<unsigned long long>(pools_quarantined_now),
                static_cast<unsigned long long>(pools_quarantined),
                static_cast<unsigned long long>(resyncs),
                static_cast<unsigned long long>(solver_fallbacks),
                static_cast<unsigned long long>(shards), shard_imbalance,
                static_cast<unsigned long long>(shard_repriced_min()),
                static_cast<unsigned long long>(shard_repriced_max()),
                static_cast<unsigned long long>(routing_queries),
                static_cast<unsigned long long>(routing_direct),
                static_cast<unsigned long long>(routing_water_filling),
                static_cast<unsigned long long>(routing_flow_solves),
                static_cast<unsigned long long>(routing_failures),
                routing_p50_us, routing_p99_us);
  return buffer;
}

std::vector<std::string> MetricsSnapshot::csv_columns() {
  return {"events_ingested",      "events_dropped",
          "events_coalesced",     "batches",
          "loops_repriced",       "queue_depth",
          "solver_iterations",    "warm_hits",
          "warm_misses",          "reprice_samples",
          "reprice_p50_us",       "reprice_p90_us",
          "reprice_p99_us",       "reprice_max_us",
          "loops_repriced_cpmm",  "loops_repriced_mixed",
          "cpmm_reprice_samples", "cpmm_reprice_p50_us",
          "cpmm_reprice_p99_us",  "cpmm_reprice_max_us",
          "mixed_reprice_samples", "mixed_reprice_p50_us",
          "mixed_reprice_p99_us", "mixed_reprice_max_us",
          // One column per RejectReason, in enum order.
          "rejected_unknown_pool", "rejected_non_finite",
          "rejected_non_positive", "rejected_wrong_kind",
          "rejected_out_of_range", "rejected_stale_sequence",
          "pools_quarantined",     "pools_quarantined_now",
          "resyncs",               "solver_fallbacks",
          // Sharded engine: the per-shard vector is collapsed to its
          // extremes so the schema stays fixed for any K.
          "shards",                "shard_imbalance",
          "shard_repriced_min",    "shard_repriced_max",
          // Pipelined engine (appended to keep old consumers' column
          // positions stable).
          "warm_invalidations",    "worker_queue_depth",
          "pipeline_depth",        "epoch_lag",
          "stage_validate_p50_us", "stage_validate_p99_us",
          "stage_write_p50_us",    "stage_write_p99_us",
          // Mixed-loop route split (appended — fixed column positions
          // for existing consumers).
          "loops_repriced_mixed_fast", "loops_repriced_mixed_generic",
          // Routing service (appended).
          "routing_queries",       "routing_direct",
          "routing_water_filling", "routing_flow_solves",
          "routing_failures",      "routing_samples",
          "routing_p50_us",        "routing_p99_us",
          "routing_max_us"};
}

MetricsSnapshot RuntimeMetrics::snapshot() const {
  MetricsSnapshot snap;
  snap.events_ingested = events_ingested_.load(std::memory_order_relaxed);
  snap.events_dropped = events_dropped_.load(std::memory_order_relaxed);
  snap.events_coalesced = events_coalesced_.load(std::memory_order_relaxed);
  snap.batches = batches_.load(std::memory_order_relaxed);
  snap.loops_repriced = loops_repriced_.load(std::memory_order_relaxed);
  snap.queue_depth = queue_depth_.load(std::memory_order_relaxed);
  snap.solver_iterations = solver_iterations_.load(std::memory_order_relaxed);
  snap.warm_hits = warm_hits_.load(std::memory_order_relaxed);
  snap.warm_misses = warm_misses_.load(std::memory_order_relaxed);
  snap.reprice_samples = reprice_latency_.samples();
  snap.reprice_p50_us = reprice_latency_.quantile(0.50);
  snap.reprice_p90_us = reprice_latency_.quantile(0.90);
  snap.reprice_p99_us = reprice_latency_.quantile(0.99);
  snap.reprice_max_us = reprice_latency_.max_us();
  snap.loops_repriced_cpmm =
      loops_repriced_cpmm_.load(std::memory_order_relaxed);
  snap.loops_repriced_mixed =
      loops_repriced_mixed_.load(std::memory_order_relaxed);
  snap.loops_repriced_mixed_fast =
      loops_repriced_mixed_fast_.load(std::memory_order_relaxed);
  snap.loops_repriced_mixed_generic =
      loops_repriced_mixed_generic_.load(std::memory_order_relaxed);
  snap.cpmm_reprice_samples = cpmm_reprice_latency_.samples();
  snap.cpmm_reprice_p50_us = cpmm_reprice_latency_.quantile(0.50);
  snap.cpmm_reprice_p99_us = cpmm_reprice_latency_.quantile(0.99);
  snap.cpmm_reprice_max_us = cpmm_reprice_latency_.max_us();
  snap.mixed_reprice_samples = mixed_reprice_latency_.samples();
  snap.mixed_reprice_p50_us = mixed_reprice_latency_.quantile(0.50);
  snap.mixed_reprice_p99_us = mixed_reprice_latency_.quantile(0.99);
  snap.mixed_reprice_max_us = mixed_reprice_latency_.max_us();
  for (std::size_t r = 0; r < kRejectReasonCount; ++r) {
    snap.events_rejected[r] =
        events_rejected_[r].load(std::memory_order_relaxed);
  }
  snap.pools_quarantined = pools_quarantined_.load(std::memory_order_relaxed);
  snap.pools_quarantined_now =
      pools_quarantined_now_.load(std::memory_order_relaxed);
  snap.resyncs = resyncs_.load(std::memory_order_relaxed);
  snap.solver_fallbacks = solver_fallbacks_.load(std::memory_order_relaxed);
  snap.shards = shards_;
  snap.shard_imbalance = shard_imbalance_;
  snap.shard_repriced.reserve(shard_repriced_.size());
  for (const std::atomic<std::uint64_t>& n : shard_repriced_) {
    snap.shard_repriced.push_back(n.load(std::memory_order_relaxed));
  }
  snap.pipeline_depth = pipeline_depth_;
  snap.epoch_lag = epoch_lag_.load(std::memory_order_relaxed);
  snap.warm_invalidations =
      warm_invalidations_.load(std::memory_order_relaxed);
  snap.worker_queue_depth =
      worker_queue_depth_.load(std::memory_order_relaxed);
  snap.stage_validate_samples = stage_validate_latency_.samples();
  snap.stage_validate_p50_us = stage_validate_latency_.quantile(0.50);
  snap.stage_validate_p99_us = stage_validate_latency_.quantile(0.99);
  snap.stage_write_samples = stage_write_latency_.samples();
  snap.stage_write_p50_us = stage_write_latency_.quantile(0.50);
  snap.stage_write_p99_us = stage_write_latency_.quantile(0.99);
  snap.routing_queries = routing_queries_.load(std::memory_order_relaxed);
  snap.routing_direct = routing_direct_.load(std::memory_order_relaxed);
  snap.routing_water_filling =
      routing_water_filling_.load(std::memory_order_relaxed);
  snap.routing_flow_solves =
      routing_flow_solves_.load(std::memory_order_relaxed);
  snap.routing_failures = routing_failures_.load(std::memory_order_relaxed);
  snap.routing_samples = routing_latency_.samples();
  snap.routing_p50_us = routing_latency_.quantile(0.50);
  snap.routing_p99_us = routing_latency_.quantile(0.99);
  snap.routing_max_us = routing_latency_.max_us();
  return snap;
}

Status write_metrics_csv(const std::vector<MetricsSnapshot>& snapshots,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return make_error(ErrorCode::kIoError, "cannot open " + path);
  }
  CsvWriter csv(out);
  csv.header(MetricsSnapshot::csv_columns());
  for (const MetricsSnapshot& s : snapshots) {
    csv.row(static_cast<std::size_t>(s.events_ingested),
            static_cast<std::size_t>(s.events_dropped),
            static_cast<std::size_t>(s.events_coalesced),
            static_cast<std::size_t>(s.batches),
            static_cast<std::size_t>(s.loops_repriced),
            static_cast<std::size_t>(s.queue_depth),
            static_cast<std::size_t>(s.solver_iterations),
            static_cast<std::size_t>(s.warm_hits),
            static_cast<std::size_t>(s.warm_misses),
            static_cast<std::size_t>(s.reprice_samples), s.reprice_p50_us,
            s.reprice_p90_us, s.reprice_p99_us, s.reprice_max_us,
            static_cast<std::size_t>(s.loops_repriced_cpmm),
            static_cast<std::size_t>(s.loops_repriced_mixed),
            static_cast<std::size_t>(s.cpmm_reprice_samples),
            s.cpmm_reprice_p50_us, s.cpmm_reprice_p99_us,
            s.cpmm_reprice_max_us,
            static_cast<std::size_t>(s.mixed_reprice_samples),
            s.mixed_reprice_p50_us, s.mixed_reprice_p99_us,
            s.mixed_reprice_max_us,
            static_cast<std::size_t>(s.events_rejected[0]),
            static_cast<std::size_t>(s.events_rejected[1]),
            static_cast<std::size_t>(s.events_rejected[2]),
            static_cast<std::size_t>(s.events_rejected[3]),
            static_cast<std::size_t>(s.events_rejected[4]),
            static_cast<std::size_t>(s.events_rejected[5]),
            static_cast<std::size_t>(s.pools_quarantined),
            static_cast<std::size_t>(s.pools_quarantined_now),
            static_cast<std::size_t>(s.resyncs),
            static_cast<std::size_t>(s.solver_fallbacks),
            static_cast<std::size_t>(s.shards), s.shard_imbalance,
            static_cast<std::size_t>(s.shard_repriced_min()),
            static_cast<std::size_t>(s.shard_repriced_max()),
            static_cast<std::size_t>(s.warm_invalidations),
            static_cast<std::size_t>(s.worker_queue_depth),
            static_cast<std::size_t>(s.pipeline_depth),
            static_cast<std::size_t>(s.epoch_lag), s.stage_validate_p50_us,
            s.stage_validate_p99_us, s.stage_write_p50_us,
            s.stage_write_p99_us,
            static_cast<std::size_t>(s.loops_repriced_mixed_fast),
            static_cast<std::size_t>(s.loops_repriced_mixed_generic),
            static_cast<std::size_t>(s.routing_queries),
            static_cast<std::size_t>(s.routing_direct),
            static_cast<std::size_t>(s.routing_water_filling),
            static_cast<std::size_t>(s.routing_flow_solves),
            static_cast<std::size_t>(s.routing_failures),
            static_cast<std::size_t>(s.routing_samples), s.routing_p50_us,
            s.routing_p99_us, s.routing_max_us);
  }
  return Status::success();
}

}  // namespace arb::runtime
