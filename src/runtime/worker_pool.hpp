#pragma once

/// \file worker_pool.hpp
/// Fixed-size thread pool over a bounded MPMC task queue — the repo's
/// first multi-threaded substrate. Deliberately minimal: mutex + two
/// condition variables, no lock-free cleverness, because the tasks it
/// carries (loop re-pricing) are microseconds to milliseconds each and
/// the queue is never the bottleneck.
///
/// Completion tracking: a caller that needs to join on *its own* tasks —
/// not the whole pool — tags them with a `TaskGroup` and waits on the
/// group. The pipelined scanner relies on this: the reprice lanes of
/// epoch N are harvested by group, while the pool keeps accepting work
/// for later epochs.
///
/// Shutdown is graceful: intake stops, already-queued tasks run to
/// completion, then the threads join. The destructor shuts down.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace arb::runtime {

/// Counts outstanding tasks submitted against it; wait() blocks until
/// every one finished. A group may be reused across rounds (submit,
/// wait, submit, ...). The release/acquire pair on the internal counter
/// is the happens-before edge from each task's writes to the waiter.
class TaskGroup {
 public:
  TaskGroup() = default;
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Blocks until every task submitted against this group has run.
  /// Returns immediately when none are outstanding.
  void wait();

  [[nodiscard]] bool idle() const {
    return pending_.load(std::memory_order_acquire) == 0;
  }

 private:
  friend class WorkerPool;
  void add(std::size_t n) {
    pending_.fetch_add(n, std::memory_order_relaxed);
  }
  void finish();

  std::atomic<std::size_t> pending_{0};
  std::mutex mutex_;
  std::condition_variable done_;
};

class WorkerPool {
 public:
  /// What submit() does when the queue is at capacity.
  enum class Overflow {
    kBlock,   ///< producer waits for a slot (backpressure)
    kReject,  ///< submit returns false immediately
  };

  struct Config {
    std::size_t threads = 4;
    std::size_t queue_capacity = 1024;
    Overflow overflow = Overflow::kBlock;
  };

  WorkerPool();  ///< default Config
  explicit WorkerPool(const Config& config);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueues a task. Returns false when rejected (kReject policy with a
  /// full queue, or the pool is shutting down); the task is then dropped.
  /// With a non-null `group` the task counts against it until it runs.
  [[nodiscard]] bool submit(std::function<void()> task,
                            TaskGroup* group = nullptr);

  /// Enqueues a whole round of tasks under one lock acquisition, waking
  /// only as many workers as there are tasks (batch wakeups: a burst of
  /// N chunks rings N bells, not N broadcasts). All-or-nothing: returns
  /// false — and enqueues nothing, leaving `tasks` untouched — when the
  /// pool is stopping or the batch cannot fit (kReject policy); the
  /// caller then runs the tasks inline. On success the tasks are moved
  /// from and `tasks` is cleared.
  [[nodiscard]] bool submit_many(std::vector<std::function<void()>>& tasks,
                                 TaskGroup* group = nullptr);

  /// Blocks until the queue is empty and every running task has finished.
  void wait_idle();

  /// Stops intake, drains queued tasks, joins the threads. Idempotent.
  void shutdown();

  [[nodiscard]] std::size_t thread_count() const { return threads_.size(); }
  [[nodiscard]] std::size_t queue_depth() const;

 private:
  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
  };

  void worker_loop();

  const std::size_t capacity_;
  const Overflow overflow_;

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::condition_variable idle_;
  std::deque<Task> queue_;
  std::size_t running_ = 0;  ///< tasks currently executing
  bool stopping_ = false;

  std::vector<std::thread> threads_;
};

}  // namespace arb::runtime
