#pragma once

/// \file worker_pool.hpp
/// Fixed-size thread pool over a bounded MPMC task queue — the repo's
/// first multi-threaded substrate. Deliberately minimal: mutex + two
/// condition variables, no lock-free cleverness, because the tasks it
/// carries (loop re-pricing) are microseconds to milliseconds each and
/// the queue is never the bottleneck.
///
/// Shutdown is graceful: intake stops, already-queued tasks run to
/// completion, then the threads join. The destructor shuts down.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace arb::runtime {

class WorkerPool {
 public:
  /// What submit() does when the queue is at capacity.
  enum class Overflow {
    kBlock,   ///< producer waits for a slot (backpressure)
    kReject,  ///< submit returns false immediately
  };

  struct Config {
    std::size_t threads = 4;
    std::size_t queue_capacity = 1024;
    Overflow overflow = Overflow::kBlock;
  };

  WorkerPool();  ///< default Config
  explicit WorkerPool(const Config& config);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueues a task. Returns false when rejected (kReject policy with a
  /// full queue, or the pool is shutting down); the task is then dropped.
  [[nodiscard]] bool submit(std::function<void()> task);

  /// Blocks until the queue is empty and every running task has finished.
  void wait_idle();

  /// Stops intake, drains queued tasks, joins the threads. Idempotent.
  void shutdown();

  [[nodiscard]] std::size_t thread_count() const { return threads_.size(); }
  [[nodiscard]] std::size_t queue_depth() const;

 private:
  void worker_loop();

  const std::size_t capacity_;
  const Overflow overflow_;

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t running_ = 0;  ///< tasks currently executing
  bool stopping_ = false;

  std::vector<std::thread> threads_;
};

}  // namespace arb::runtime
