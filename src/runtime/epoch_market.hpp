#pragma once

/// \file epoch_market.hpp
/// Double-buffered market epochs for the pipelined runtime (DESIGN.md
/// §12).
///
/// The serial engine interleaves writes and reads on one buffer:
/// write pool → refresh view → reprice → repeat. The pipelined engine
/// overlaps the stages instead, so repricing lanes for epoch N must read
/// a *frozen* market while the consumer thread is already applying epoch
/// N+1's events. `EpochMarket` provides exactly that: two full
/// (MarketSnapshot, MarketView) buffers, a front the readers see and a
/// back the single writer mutates, with `commit()` as the epoch-swap
/// barrier.
///
/// Write protocol (single writer — the service's consumer thread):
///
///   begin_writes();              // catch the back buffer up to front
///   write(e0); write(e1); ...    // apply epoch N+1's events to back
///   commit();                    // barrier: back becomes front
///
/// Because events carry *absolute* pool state, catching the back buffer
/// up does not require copying the snapshot: `begin_writes()` replays
/// the journal of the previously committed epoch's events into the back
/// buffer, which lands it bit-identically on the front state (the same
/// writes, applied to the same starting state, through the same code
/// path). Each buffer therefore sees the exact write sequence the serial
/// single-buffer engine would have seen, which keeps the pipelined
/// results bit-identical to serial for any pipeline depth.
///
/// Readers never lock: the swap is a plain index flip on the writer
/// thread, and the pipeline guarantees (ARB_REQUIRE'd by the scanner)
/// that no repricing lane is in flight across a commit. Stale-read
/// detection is the per-buffer epoch pair: after commit(),
/// `front_view().epoch() == front().graph.epoch()` — a view epoch
/// lagging its graph marks a buffer that is mid-write (the back buffer
/// between begin_writes() and commit()).

#include <cstdint>
#include <vector>

#include "common/result.hpp"
#include "market/snapshot.hpp"
#include "market/view.hpp"
#include "runtime/event.hpp"

namespace arb::runtime {

class EpochMarket {
 public:
  /// Seeds both buffers from one snapshot (epoch 0; zero committed
  /// epochs). The views are built once and refreshed per-pool afterwards.
  explicit EpochMarket(market::MarketSnapshot snapshot);

  EpochMarket(EpochMarket&&) = default;
  EpochMarket& operator=(EpochMarket&&) = default;

  /// Opens the back buffer for the next epoch's writes: replays the
  /// previously committed epoch's journal so the back buffer matches the
  /// front. Cheap when the previous batch was small — cost is
  /// proportional to the events written, never to the market size.
  void begin_writes();

  /// Applies one absolute-state event to the back buffer (graph write +
  /// per-pool view refresh) and journals it for the next catch-up.
  /// Precondition: the pool id is in range (callers bounds-check before
  /// mutating anything). On error the back buffer may hold a partial
  /// batch — call rollback().
  [[nodiscard]] Status write(const PoolUpdateEvent& event);

  /// Epoch-swap barrier: seals the back buffer (its view adopts its
  /// graph's epoch) and flips it to front. Must not run while any reader
  /// still prices against the current front.
  void commit();

  /// Discards a partially written epoch: the back buffer is restored to
  /// a copy of the front and both journals clear. O(market); error paths
  /// only.
  void rollback();

  /// The committed buffer readers price against.
  [[nodiscard]] const market::MarketSnapshot& front() const {
    return snaps_[front_];
  }
  [[nodiscard]] const market::MarketView& front_view() const {
    return views_[front_];
  }
  /// The in-progress buffer (tests and diagnostics only — readers must
  /// never price against it).
  [[nodiscard]] const market::MarketSnapshot& back() const {
    return snaps_[front_ ^ 1];
  }
  [[nodiscard]] const market::MarketView& back_view() const {
    return views_[front_ ^ 1];
  }

  /// Committed epochs since construction.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

 private:
  /// The one write path both fresh writes and catch-up replays go
  /// through (absolute state → replay is exact).
  [[nodiscard]] Status apply_to_back(const PoolUpdateEvent& event);

  market::MarketSnapshot snaps_[2];
  market::MarketView views_[2];
  std::size_t front_ = 0;
  std::uint64_t epoch_ = 0;
  /// Events written since begin_writes() — becomes the next catch-up.
  std::vector<PoolUpdateEvent> journal_;
  /// The committed epoch's journal, pending replay into the back buffer.
  std::vector<PoolUpdateEvent> catch_up_;
};

}  // namespace arb::runtime
