#include "runtime/worker_pool.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace arb::runtime {

void TaskGroup::wait() {
  std::unique_lock lock(mutex_);
  done_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

void TaskGroup::finish() {
  // The decrement and the notify both happen under the mutex, and wait()
  // has no lock-free fast path: a waiter can only observe pending_ == 0
  // while holding the mutex, which means the last finisher has already
  // left its critical section. That makes the common lifetime pattern —
  // wait() returns, the owner destroys the group — safe; with an
  // unlocked decrement the waiter could destroy the condition variable
  // while the finisher was still between its fetch_sub and its notify.
  std::lock_guard lock(mutex_);
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    done_.notify_all();
  }
}

WorkerPool::WorkerPool() : WorkerPool(Config{}) {}

WorkerPool::WorkerPool(const Config& config)
    : capacity_(config.queue_capacity), overflow_(config.overflow) {
  ARB_REQUIRE(config.threads >= 1, "worker pool needs at least one thread");
  ARB_REQUIRE(capacity_ >= 1, "worker pool needs a non-empty queue");
  threads_.reserve(config.threads);
  for (std::size_t i = 0; i < config.threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() { shutdown(); }

bool WorkerPool::submit(std::function<void()> task, TaskGroup* group) {
  std::unique_lock lock(mutex_);
  if (overflow_ == Overflow::kBlock) {
    not_full_.wait(lock,
                   [this] { return stopping_ || queue_.size() < capacity_; });
  }
  if (stopping_ || queue_.size() >= capacity_) return false;
  if (group != nullptr) group->add(1);
  queue_.push_back(Task{std::move(task), group});
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

bool WorkerPool::submit_many(std::vector<std::function<void()>>& tasks,
                             TaskGroup* group) {
  if (tasks.empty()) return true;
  const std::size_t n = tasks.size();
  if (n > capacity_) return false;  // can never fit; caller runs inline
  std::unique_lock lock(mutex_);
  if (overflow_ == Overflow::kBlock) {
    not_full_.wait(lock, [this, n] {
      return stopping_ || queue_.size() + n <= capacity_;
    });
  }
  if (stopping_ || queue_.size() + n > capacity_) return false;
  if (group != nullptr) group->add(n);
  for (std::function<void()>& task : tasks) {
    queue_.push_back(Task{std::move(task), group});
  }
  lock.unlock();
  tasks.clear();
  const std::size_t wakeups = std::min(n, threads_.size());
  for (std::size_t i = 0; i < wakeups; ++i) not_empty_.notify_one();
  return true;
}

void WorkerPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void WorkerPool::shutdown() {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) {
      // Second call: threads are already winding down; fall through to
      // join whatever is left.
    }
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

std::size_t WorkerPool::queue_depth() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

void WorkerPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      not_empty_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    not_full_.notify_one();
    task.fn();
    if (task.group != nullptr) task.group->finish();
    {
      std::lock_guard lock(mutex_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace arb::runtime
