#include "runtime/worker_pool.hpp"

#include "common/error.hpp"

namespace arb::runtime {

WorkerPool::WorkerPool() : WorkerPool(Config{}) {}

WorkerPool::WorkerPool(const Config& config)
    : capacity_(config.queue_capacity), overflow_(config.overflow) {
  ARB_REQUIRE(config.threads >= 1, "worker pool needs at least one thread");
  ARB_REQUIRE(capacity_ >= 1, "worker pool needs a non-empty queue");
  threads_.reserve(config.threads);
  for (std::size_t i = 0; i < config.threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() { shutdown(); }

bool WorkerPool::submit(std::function<void()> task) {
  std::unique_lock lock(mutex_);
  if (overflow_ == Overflow::kBlock) {
    not_full_.wait(lock,
                   [this] { return stopping_ || queue_.size() < capacity_; });
  }
  if (stopping_ || queue_.size() >= capacity_) return false;
  queue_.push_back(std::move(task));
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

void WorkerPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void WorkerPool::shutdown() {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) {
      // Second call: threads are already winding down; fall through to
      // join whatever is left.
    }
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

std::size_t WorkerPool::queue_depth() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

void WorkerPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      not_empty_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    not_full_.notify_one();
    task();
    {
      std::lock_guard lock(mutex_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace arb::runtime
