#include "runtime/routing_service.hpp"

#include <chrono>

namespace arb::runtime {

Result<core::RouteResult> RoutingService::best_execution(
    const core::RouteQuery& query) {
  RuntimeMetrics& metrics = service_.metrics_registry();
  metrics.add_routing_query();

  const auto start = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  Result<core::RouteResult> result =
      service_.with_snapshot([&](const market::MarketSnapshot& snapshot) {
        return core::route(snapshot.graph, query, ctx_);
      });
  const auto elapsed = std::chrono::steady_clock::now() - start;
  metrics.record_routing_latency(
      std::chrono::duration<double, std::micro>(elapsed).count());

  if (!result) {
    metrics.add_routing_failure();
    return result;
  }
  switch (result->method) {
    case core::RouteMethod::kDirect:
      metrics.add_routing_direct();
      break;
    case core::RouteMethod::kWaterFilling:
      metrics.add_routing_water_filling();
      break;
    case core::RouteMethod::kFlowSolve:
      metrics.add_routing_flow_solve();
      break;
  }
  return result;
}

}  // namespace arb::runtime
