#include "core/closed_form.hpp"

#include <algorithm>
#include <cmath>

#include "amm/path.hpp"

namespace arb::core {
namespace {

/// Monetized profit of the separable objective at inputs (d0, d1).
double pair_profit(const std::vector<LoopHopData>& hops, double d0,
                   double d1) {
  return hops[0].price_out * hops[0].swap(d0) - hops[0].price_in * d0 +
         hops[1].price_out * hops[1].swap(d1) - hops[1].price_in * d1;
}

bool hop_degenerate(const LoopHopData& hop) {
  return !(hop.reserve_in > 0.0) || !(hop.reserve_out > 0.0) ||
         !(hop.gamma > 0.0) || !(hop.price_in > 0.0) ||
         !(hop.price_out > 0.0);
}

}  // namespace

double optimal_single_hop_input(const LoopHopData& hop) {
  // Stationarity of P_out·F(d) − P_in·d:  F'(d) = P_in/P_out with
  // F'(d) = γ·x·y/(x + γ·d)², so (x + γ·d)² = γ·x·y·P_out/P_in.
  const double target =
      hop.gamma * hop.reserve_in * hop.reserve_out * hop.price_out /
      hop.price_in;
  if (!(target > 0.0) || !std::isfinite(target)) return 0.0;
  const double d = (std::sqrt(target) - hop.reserve_in) / hop.gamma;
  return std::max(0.0, d);
}

std::optional<ClosedFormSolution> solve_length2_closed_form(
    const std::vector<LoopHopData>& hops) {
  if (hops.size() != 2) return std::nullopt;
  if (hop_degenerate(hops[0]) || hop_degenerate(hops[1])) return std::nullopt;

  // Candidate D / baseline: the zero trade.
  ClosedFormSolution best;

  // Candidate A: per-hop unconstrained optima, valid only if the pair
  // happens to satisfy both flow constraints.
  {
    const double d0 = optimal_single_hop_input(hops[0]);
    const double d1 = optimal_single_hop_input(hops[1]);
    if (d1 <= hops[0].swap(d0) && d0 <= hops[1].swap(d1)) {
      const double profit = pair_profit(hops, d0, d1);
      if (profit > best.profit_usd) {
        best.inputs[0] = d0;
        best.inputs[1] = d1;
        best.profit_usd = profit;
      }
    }
  }

  // Candidates B and C: single-start trades via the Möbius composition,
  // starting from token 0 and token 1 respectively.
  for (int start = 0; start < 2; ++start) {
    const LoopHopData& first = hops[start];
    const LoopHopData& second = hops[1 - start];
    const amm::MobiusCoefficients loop =
        amm::MobiusCoefficients::identity()
            .then_hop(first.reserve_in, first.reserve_out, first.gamma)
            .then_hop(second.reserve_in, second.reserve_out, second.gamma);
    const double d_first = loop.optimal_input();
    if (!(d_first > 0.0)) continue;
    const double d_second = first.swap(d_first);
    const double profit =
        first.price_in * (loop.evaluate(d_first) - d_first);
    if (profit > best.profit_usd) {
      best.inputs[start] = d_first;
      best.inputs[1 - start] = d_second;
      best.profit_usd = profit;
    }
  }

  best.outputs[0] = hops[0].swap(best.inputs[0]);
  best.outputs[1] = hops[1].swap(best.inputs[1]);
  return best;
}

}  // namespace arb::core
