#include "core/generic_convex.hpp"

#include <cmath>
#include <functional>
#include <limits>

#include "common/error.hpp"
#include "math/scalar_solve.hpp"

namespace arb::core {
namespace {

/// Same re-parameterization as core/coordinate.cpp, over black-box hops:
/// head input s = d_0, forward fractions ρ_i with
/// d_{i+1} = ρ_i · swap_i(d_i); flow constraints become the ρ box and
/// only the wrap constraint swap_{n−1}(d_{n−1}) ≥ s couples coordinates.
///
/// The chain views the caller's hop array through a rotation index
/// instead of holding a rotated copy — materializing n anchors over n
/// hops used to copy n² std::functions per solve — and the forward-pass
/// scratch lives in the caller's SolveWorkspace so steady-state solves
/// stay off the allocator.
struct GenericChain {
  const std::vector<GenericHop>& hops;
  std::size_t anchor;
  math::Vector& scratch;

  [[nodiscard]] const GenericHop& hop(std::size_t i) const {
    return hops[(anchor + i) % hops.size()];
  }

  [[nodiscard]] const math::Vector& inputs(double s,
                                           const math::Vector& rho) const {
    scratch.resize(hops.size());
    scratch[0] = s;
    for (std::size_t i = 1; i < hops.size(); ++i) {
      scratch[i] = rho[i - 1] * hop(i - 1).swap(scratch[i - 1]);
    }
    return scratch;
  }

  [[nodiscard]] double wrap_output(double s, const math::Vector& rho) const {
    const math::Vector& d = inputs(s, rho);
    const std::size_t last = hops.size() - 1;
    return hop(last).swap(d[last]);
  }

  [[nodiscard]] double profit(double s, const math::Vector& rho) const {
    const math::Vector& d = inputs(s, rho);
    const std::size_t last = hops.size() - 1;
    double usd = hop(0).price_in * (hop(last).swap(d[last]) - s);
    for (std::size_t i = 1; i < hops.size(); ++i) {
      usd += hop(i).price_in * (1.0 - rho[i - 1]) *
             hop(i - 1).swap(d[i - 1]);
    }
    return usd;
  }

  /// Whole-chain output for a head input — the seeding path's evaluator
  /// (replaces constructing a GenericPath per anchor).
  [[nodiscard]] double chain_output(double input) const {
    double amount = input;
    for (std::size_t i = 0; i < hops.size(); ++i) {
      amount = hop(i).swap(amount);
    }
    return amount;
  }
};

double max_feasible_head(const GenericChain& chain, const math::Vector& rho,
                         double current_s, double scale) {
  const auto slack = [&](double s) { return chain.wrap_output(s, rho) - s; };
  double lo = std::max(current_s, 1e-12 * scale);
  if (slack(lo) < 0.0) return current_s;
  double hi = std::max(lo * 2.0, 1e-9 * scale);
  int guard = 0;
  while (slack(hi) >= 0.0 && guard++ < 200) {
    lo = hi;
    hi *= 2.0;
    if (hi > scale * 1e9) return hi;
  }
  auto root = math::bisect_root(slack, lo, hi);
  return root.ok() ? root->x : lo;
}

double min_feasible_rho(const GenericChain& chain, double s,
                        const math::Vector& rho, std::size_t index,
                        math::Vector& scratch) {
  scratch = rho;
  const double current = rho[index];
  const auto slack = [&](double value) {
    scratch[index] = value;
    return chain.wrap_output(s, scratch) - s;
  };
  if (slack(0.0) >= 0.0) return 0.0;
  auto root = math::bisect_root(slack, 0.0, current);
  return root.ok() ? root->x : current;
}

/// Anchored sweep (see coordinate.cpp for the commentary; the logic is
/// identical with swap evaluations replacing the CPMM closed form).
GenericConvexReport solve_anchored(const std::vector<GenericHop>& hops,
                                   std::size_t anchor,
                                   const GenericConvexOptions& options,
                                   optim::SolveWorkspace& ws) {
  const std::size_t n = hops.size();
  GenericConvexReport report;
  report.inputs.assign(n, 0.0);
  report.outputs.assign(n, 0.0);

  const GenericChain chain{hops, anchor, ws.generic_chain};

  // Seed at the single-start optimum of this rotation.
  amm::GenericOptimizeOptions seed_options;
  seed_options.initial_scale = options.initial_scale;
  const std::function<double(double)> chain_eval =
      [&chain](double input) { return chain.chain_output(input); };
  auto seed = amm::optimize_input_generic(chain_eval, seed_options);
  if (!seed.ok() || seed->input <= 0.0) {
    report.converged = true;  // profitless rotation: zero is optimal
    return report;
  }

  double s = seed->input;
  math::Vector& rho = ws.generic_rho;
  rho.assign(n - 1, 1.0);
  double best = chain.profit(s, rho);
  const double scale = std::max(seed->input, options.initial_scale);

  math::ScalarSolveOptions line;
  line.x_tolerance = options.coordinate.line_tolerance * scale;
  math::ScalarSolveOptions rho_line;
  rho_line.x_tolerance = options.coordinate.line_tolerance;

  // Candidate buffers reused across the many line-search evaluations
  // below (rho_comp is nested inside evaluations that use rho_eval, so
  // the two must stay distinct).
  math::Vector& rho_eval = ws.generic_rho_eval;
  math::Vector& rho_comp = ws.generic_rho_comp;
  rho_eval.assign(n - 1, 0.0);
  rho_comp.assign(n - 1, 0.0);

  const auto compensated_profit = [&](double s_value,
                                      const math::Vector& rho_value,
                                      std::size_t comp) {
    rho_comp = rho_value;
    const auto slack = [&](double v) {
      rho_comp[comp] = v;
      return chain.wrap_output(s_value, rho_comp) - s_value;
    };
    if (slack(1.0) < 0.0) {
      return -std::numeric_limits<double>::infinity();
    }
    if (slack(0.0) < 0.0) {
      auto root = math::bisect_root([&](double v) { return slack(v); },
                                    0.0, 1.0);
      rho_comp[comp] = root.ok() ? root->x : 1.0;
    } else {
      rho_comp[comp] = 0.0;
    }
    return chain.profit(s_value, rho_comp);
  };
  const auto resolve_comp = [&](std::size_t comp) {
    const auto slack = [&](double v) {
      rho_eval = rho;
      rho_eval[comp] = v;
      return chain.wrap_output(s, rho_eval) - s;
    };
    if (slack(0.0) < 0.0) {
      auto root = math::bisect_root(slack, 0.0, 1.0);
      if (root.ok()) rho[comp] = root->x;
    } else {
      rho[comp] = 0.0;
    }
  };

  for (int sweep = 0; sweep < options.coordinate.max_sweeps; ++sweep) {
    report.sweeps = sweep + 1;
    const double before = best;

    {
      const double hi = max_feasible_head(chain, rho, s, scale);
      const auto objective = [&](double v) { return chain.profit(v, rho); };
      const auto peak = math::golden_section_maximize(objective, 0.0, hi, line);
      if (peak.f > best) {
        best = peak.f;
        s = peak.x;
      }
    }
    for (std::size_t i = 0; i < n - 1; ++i) {
      const double lo = min_feasible_rho(chain, s, rho, i, rho_eval);
      const auto objective = [&](double v) {
        rho_eval = rho;
        rho_eval[i] = v;
        return chain.profit(s, rho_eval);
      };
      const auto peak =
          math::golden_section_maximize(objective, lo, 1.0, rho_line);
      if (peak.f > best) {
        best = peak.f;
        rho[i] = peak.x;
      }
    }
    for (std::size_t comp = 0; comp < n - 1; ++comp) {
      {
        const auto objective = [&](double v) {
          return compensated_profit(v, rho, comp);
        };
        const auto peak = math::golden_section_maximize(
            objective, 0.0, s * 4.0 + scale * 1e-6, line);
        if (peak.f > best) {
          best = peak.f;
          s = peak.x;
          resolve_comp(comp);
        }
      }
      for (std::size_t i = 0; i < n - 1; ++i) {
        if (i == comp) continue;
        const auto objective = [&](double v) {
          rho_eval = rho;
          rho_eval[i] = v;
          return compensated_profit(s, rho_eval, comp);
        };
        const auto peak =
            math::golden_section_maximize(objective, 0.0, 1.0, rho_line);
        if (peak.f > best) {
          best = peak.f;
          rho[i] = peak.x;
          resolve_comp(comp);
        }
      }
    }

    if (best - before < options.coordinate.improvement_tolerance) {
      report.converged = true;
      break;
    }
  }

  const math::Vector& d = chain.inputs(s, rho);
  for (std::size_t i = 0; i < n; ++i) {
    report.inputs[i] = d[i];
    report.outputs[i] = chain.hop(i).swap(d[i]);
  }
  report.profit_usd = chain.profit(s, rho);
  return report;
}

}  // namespace

Result<GenericConvexReport> solve_generic_convex(
    const std::vector<GenericHop>& hops, const GenericConvexOptions& options,
    optim::SolveWorkspace& workspace) {
  if (hops.size() < 2) {
    return make_error(ErrorCode::kInvalidArgument,
                      "loop needs at least 2 hops");
  }
  for (const GenericHop& hop : hops) {
    if (!hop.swap) {
      return make_error(ErrorCode::kInvalidArgument, "null hop function");
    }
    if (!(hop.price_in > 0.0)) {
      return make_error(ErrorCode::kInvalidArgument,
                        "hop prices must be positive");
    }
  }
  const std::size_t n = hops.size();
  GenericConvexReport best;
  bool first = true;
  for (std::size_t anchor = 0; anchor < n; ++anchor) {
    GenericConvexReport candidate = solve_anchored(hops, anchor, options,
                                                  workspace);
    if (first || candidate.profit_usd > best.profit_usd) {
      // Map the anchored coordinates back to the caller's hop order.
      GenericConvexReport mapped = candidate;
      mapped.inputs.assign(n, 0.0);
      mapped.outputs.assign(n, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        mapped.inputs[(anchor + i) % n] = candidate.inputs[i];
        mapped.outputs[(anchor + i) % n] = candidate.outputs[i];
      }
      best = std::move(mapped);
      first = false;
    }
  }
  return best;
}

Result<GenericConvexReport> solve_generic_convex(
    const std::vector<GenericHop>& hops,
    const GenericConvexOptions& options) {
  optim::SolveWorkspace workspace;
  return solve_generic_convex(hops, options, workspace);
}

}  // namespace arb::core
