#include "core/plan.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "amm/any_pool.hpp"
#include "common/error.hpp"

namespace arb::core {

std::vector<TokenProfit> ArbitragePlan::required_upfront() const {
  std::unordered_map<TokenId, Amount> balance;
  std::unordered_map<TokenId, Amount> deficit;
  for (const PlanStep& step : steps) {
    balance[step.token_in] -= step.amount_in;
    deficit[step.token_in] =
        std::min(deficit[step.token_in], balance[step.token_in]);
    balance[step.token_out] += step.amount_out;
  }
  std::vector<TokenProfit> upfront;
  for (const auto& [token, worst] : deficit) {
    if (worst < 0.0) upfront.push_back(TokenProfit{token, -worst});
  }
  std::sort(upfront.begin(), upfront.end(),
            [](const TokenProfit& a, const TokenProfit& b) {
              return a.token < b.token;
            });
  return upfront;
}

std::string ArbitragePlan::describe(const graph::TokenGraph& graph) const {
  std::ostringstream os;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const PlanStep& s = steps[i];
    os << "  step " << i << ": swap " << s.amount_in << " "
       << graph.symbol(s.token_in) << " -> " << s.amount_out << " "
       << graph.symbol(s.token_out) << " via " << to_string(s.pool) << "\n";
  }
  os << "  expected profit:";
  for (const TokenProfit& p : expected_profits) {
    if (p.amount != 0.0) os << " " << p.amount << " " << graph.symbol(p.token);
  }
  os << " (= $" << expected_monetized_usd << ")";
  return os.str();
}

Result<ArbitragePlan> plan_from_single_start(const graph::TokenGraph& graph,
                                             const graph::Cycle& cycle,
                                             const StrategyOutcome& outcome) {
  // Locate the rotation that starts at the outcome's start token.
  std::size_t offset = cycle.length();
  for (std::size_t i = 0; i < cycle.length(); ++i) {
    if (cycle.tokens()[i] == outcome.start_token) {
      offset = i;
      break;
    }
  }
  if (offset == cycle.length()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "outcome start token not in cycle");
  }

  // Walk the rotated cycle quoting each pool through the uniform surface
  // (works for any venue kind; identical quotes on all-CPMM loops).
  const graph::Cycle rotated = cycle.rotated(offset);
  ArbitragePlan plan;
  double amount = outcome.input;
  for (std::size_t i = 0; i < rotated.length(); ++i) {
    const amm::AnyPool& pool = graph.pool(rotated.pools()[i]);
    const TokenId token_in = rotated.tokens()[i];
    const TokenId token_out = rotated.tokens()[(i + 1) % rotated.length()];
    const amm::SwapQuote quote = pool.quote(token_in, amount);
    plan.steps.push_back(PlanStep{pool.id(), token_in, token_out,
                                  quote.amount_in, quote.amount_out});
    amount = quote.amount_out;
  }
  plan.expected_profits = outcome.profits;
  plan.expected_monetized_usd = outcome.monetized_usd;
  return plan;
}

Result<ArbitragePlan> plan_from_convex(const graph::TokenGraph& graph,
                                       const graph::Cycle& cycle,
                                       const ConvexSolution& solution) {
  if (solution.inputs.size() != cycle.length()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "solution/cycle length mismatch");
  }
  ArbitragePlan plan;
  for (std::size_t i = 0; i < cycle.length(); ++i) {
    const PoolId pool_id = cycle.pools()[i];
    const TokenId token_in = cycle.tokens()[i];
    const TokenId token_out = cycle.tokens()[(i + 1) % cycle.length()];
    // Planned output must be honest: never promise more than the pool
    // can give for the planned input at the snapshot reserves.
    const double attainable =
        graph.pool(pool_id).quote(token_in, solution.inputs[i]).amount_out;
    if (solution.outputs[i] > attainable * (1.0 + 1e-9)) {
      return make_error(ErrorCode::kInvariantViolated,
                        "convex solution output exceeds pool capability at "
                        "hop " + std::to_string(i));
    }
    plan.steps.push_back(PlanStep{pool_id, token_in, token_out,
                                  solution.inputs[i], solution.outputs[i]});
  }
  plan.expected_profits = solution.outcome.profits;
  plan.expected_monetized_usd = solution.outcome.monetized_usd;
  return plan;
}

}  // namespace arb::core
