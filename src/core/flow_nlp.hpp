#pragma once

/// \file flow_nlp.hpp
/// Flow-form convex program over a directed sub-graph of pool traversals
/// — the whole-graph generalization of the loop transcriptions (arXiv
/// 2204.05238 specialized to the venues this repo models).
///
/// An instance is a set of directed edges e (one pool traversal each,
/// with the PR-9 analytic kernel F_e from core/loop_nlp.hpp) over a set
/// of nodes v (tokens). Decision variables are the edge inputs d_e ≥ 0.
/// Each *constrained* node enforces nonnegative surplus
///
///   Σ_{e out of v} d_e  −  Σ_{e into v} F_e(d_e)  ≤  limit_v
///
/// (limit_v = 0, except the routing source where limit = budget), and
/// the objective maximizes Σ_v w_v · surplus_v, which telescopes to the
/// edge-separable form Σ_e [w_to(e)·F_e(d_e) − w_from(e)·d_e]. With
/// node weights = CEX prices over one cycle this is *exactly* the
/// reduced loop transcription (same constraint set, same objective);
/// with w = 1 at a sink token, 0 elsewhere, and a budget at the source
/// it is the best-execution routing program whose parallel-CPMM special
/// case is the water-filling splitter in core/routing.hpp. Concave
/// objective, convex feasible set — solved by the existing zero-
/// allocation barrier/SolveWorkspace machinery.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/result.hpp"
#include "core/loop_nlp.hpp"
#include "graph/cycle.hpp"
#include "graph/token_graph.hpp"
#include "market/price_feed.hpp"
#include "optim/barrier_solver.hpp"
#include "optim/problem.hpp"
#include "optim/workspace.hpp"

namespace arb::core {

/// A flow-form problem instance. Build with from_cycle / for_swap, or
/// assemble by hand for custom topologies (tests do).
struct FlowInstance {
  static constexpr std::size_t kNoNode = std::numeric_limits<std::size_t>::max();

  /// Directed edges; `price_in`/`price_out` on the kernels are unused
  /// here (monetization lives in node_weight).
  std::vector<LoopHopData> edges;
  std::vector<std::size_t> edge_from;  ///< node index per edge
  std::vector<std::size_t> edge_to;    ///< node index per edge

  std::vector<TokenId> node_tokens;          ///< node index → token
  std::vector<double> node_weight;           ///< objective weight per node
  std::vector<std::uint8_t> node_constrained;  ///< 1 → surplus constraint

  /// Routing mode: source spends at most `budget`; kNoNode for
  /// arbitrage instances (every node constrained at 0).
  std::size_t source = kNoNode;
  std::size_t sink = kNoNode;
  double budget = 0.0;

  /// Support chains (edge-index sequences tracing the cycle, or each
  /// enumerated path source→sink). Used to build interior starts and to
  /// attribute the solved edge flows back to per-path amounts.
  std::vector<std::vector<std::size_t>> support;

  /// When set, solve_flow re-quotes non-CPMM edge outputs against the
  /// live pools after the solve (plan honesty, matching solve_convex).
  const graph::TokenGraph* graph = nullptr;

  /// One-cycle arbitrage instance: edges = the cycle's hops, every node
  /// constrained, node weights = CEX prices. Fails with kNotFound when
  /// a price is missing.
  [[nodiscard]] static Result<FlowInstance> from_cycle(
      const graph::TokenGraph& graph, const market::CexPriceFeed& prices,
      const graph::Cycle& cycle);

  /// Best-execution instance: spend up to `budget` of token_in across
  /// the given paths (pool-id sequences token_in → token_out), maximize
  /// token_out received. Edges shared between paths (same pool, same
  /// direction) are deduplicated, so overlapping paths draw on one
  /// consistent pool state. Fails with kInvalidArgument on malformed
  /// paths (discontinuous, wrong endpoints, repeated token in a path).
  [[nodiscard]] static Result<FlowInstance> for_swap(
      const graph::TokenGraph& graph, TokenId token_in, TokenId token_out,
      const std::vector<std::vector<PoolId>>& paths, double budget);
};

/// NlpProblem transcription of a (normalized) FlowInstance.
/// Constraint layout: E × (−d_e ≤ 0), then one surplus constraint per
/// constrained node (instance order), then one cap constraint per edge
/// with finite input_cap.
class FlowProblem final : public optim::NlpProblem {
 public:
  explicit FlowProblem(FlowInstance instance);

  [[nodiscard]] std::size_t dimension() const override {
    return instance_.edges.size();
  }
  [[nodiscard]] std::size_t num_inequalities() const override {
    return instance_.edges.size() + constrained_nodes_.size() + capped_.size();
  }
  [[nodiscard]] double objective(const math::Vector& d) const override;
  [[nodiscard]] math::Vector objective_gradient(
      const math::Vector& d) const override;
  [[nodiscard]] math::Matrix objective_hessian(
      const math::Vector& d) const override;
  [[nodiscard]] double constraint(std::size_t i,
                                  const math::Vector& d) const override;
  [[nodiscard]] math::Vector constraint_gradient(
      std::size_t i, const math::Vector& d) const override;
  [[nodiscard]] math::Matrix constraint_hessian(
      std::size_t i, const math::Vector& d) const override;

  // Allocation-free variants used by the solver fast path.
  void objective_gradient_into(const math::Vector& d,
                               math::Vector& grad) const override;
  void objective_hessian_into(const math::Vector& d,
                              math::Matrix& hess) const override;
  void constraint_gradient_into(std::size_t i, const math::Vector& d,
                                math::Vector& grad) const override;
  void constraint_hessian_into(std::size_t i, const math::Vector& d,
                               math::Matrix& hess) const override;

  [[nodiscard]] const FlowInstance& instance() const { return instance_; }
  [[nodiscard]] const std::vector<std::size_t>& constrained_nodes() const {
    return constrained_nodes_;
  }

 private:
  /// Surplus-constraint value at constrained node `v` (by node index).
  [[nodiscard]] double node_surplus_limit(std::size_t v) const {
    return v == instance_.source ? instance_.budget : 0.0;
  }

  FlowInstance instance_;
  std::vector<std::size_t> constrained_nodes_;  ///< node indices, in order
  std::vector<std::vector<std::size_t>> node_out_;  ///< per node: out edges
  std::vector<std::vector<std::size_t>> node_in_;   ///< per node: in edges
  std::vector<std::size_t> capped_;  ///< edges with finite input_cap
};

struct FlowOptions {
  optim::BarrierOptions barrier;
  /// Margin (normalized units) for the strict-feasibility check on the
  /// constructed interior start.
  double interior_margin = 0.0;
};

/// Per-thread reusable solver state, mirroring ConvexContext.
struct FlowContext {
  optim::SolveWorkspace workspace;
  optim::BarrierReport report;
};

struct FlowSolution {
  std::vector<double> edge_inputs;   ///< raw token units, per edge
  std::vector<double> edge_outputs;  ///< raw units (non-CPMM re-quoted)
  std::vector<double> node_surplus;  ///< raw units of each node's token
  /// Σ_v w_v · surplus_v: USD profit for arbitrage instances, token_out
  /// received for routing instances.
  double objective = 0.0;
  double duality_gap = 0.0;  ///< barrier m/t certificate, objective units
  int iterations = 0;        ///< Newton iterations
  /// The instance was decided without invoking the solver (no profitable
  /// chain / zero budget): the zero flow is optimal.
  bool trivial = false;
};

/// Solves a flow instance: normalization (per-node units + objective
/// scale, the flow generalization of LoopNormalization), Möbius-proxy
/// marginal-flow interior start, barrier solve through ctx's workspace,
/// denormalization + non-CPMM re-quote. Fails with kInvalidArgument on
/// malformed instances, kInfeasible when no interior start exists, and
/// kNumericFailure when the barrier breaks down.
[[nodiscard]] Result<FlowSolution> solve_flow(const FlowInstance& instance,
                                              const FlowOptions& options,
                                              FlowContext& ctx);

/// Convenience overload with a fresh context.
[[nodiscard]] Result<FlowSolution> solve_flow(const FlowInstance& instance,
                                              const FlowOptions& options = {});

/// Per-support-chain attribution of a solved routing instance: how much
/// of the source budget each path spends and how much sink output it
/// delivers. Exact for edge-disjoint paths; proportional flow
/// decomposition where paths share edges.
struct PathAttribution {
  std::vector<double> inputs;   ///< per support chain, source token units
  std::vector<double> outputs;  ///< per support chain, sink token units
};
[[nodiscard]] PathAttribution attribute_support(const FlowInstance& instance,
                                                const FlowSolution& solution);

}  // namespace arb::core
