#pragma once

/// \file router.hpp
/// Whole-graph best execution: "swap S of X into Y" answered over the
/// entire pool graph.
///
/// route() enumerates candidate simple paths (bounded hops/width,
/// deterministic order), then dispatches on their structure:
///
///   - one path              → direct chain evaluation (no solver),
///   - all-CPMM, disjoint    → water-filling λ-bisection (routing.hpp),
///   - anything else         → the flow-form barrier program
///                             (core/flow_nlp.hpp), which handles mixed
///                             venues and paths sharing pools.
///
/// Exact-output queries invert the best path through the concave
/// continuation of the reverse chain (amm signed_swap_fn).

#include <cstddef>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "core/flow_nlp.hpp"
#include "graph/token_graph.hpp"

namespace arb::core {

struct RouteQuery {
  TokenId token_in;
  TokenId token_out;
  double amount_in = 0.0;
  /// Bounds on the candidate set: simple paths of at most max_hops
  /// pools, keeping the max_paths best by zero-size rate product.
  std::size_t max_hops = 3;
  std::size_t max_paths = 8;
};

/// How a route() call computed its split.
enum class RouteMethod : std::uint8_t {
  kDirect = 0,        ///< single path, chain evaluation
  kWaterFilling = 1,  ///< parallel all-CPMM closed form
  kFlowSolve = 2,     ///< flow-form barrier program
};

struct RoutedPath {
  std::vector<PoolId> pools;
  double input = 0.0;   ///< token_in spent on this path
  double output = 0.0;  ///< token_out received from this path
};

struct RouteResult {
  /// Funded and unfunded candidate paths, best zero-size rate first.
  std::vector<RoutedPath> paths;
  double amount_out = 0.0;
  RouteMethod method = RouteMethod::kDirect;
  int iterations = 0;
  double duality_gap = 0.0;  ///< flow route only; 0 otherwise
};

/// Reusable per-thread state (the flow solve's workspace).
struct RouterContext {
  FlowContext flow;
};

/// Enumerates simple paths token_in → token_out of at most max_hops
/// pools, pruning hops a trade cannot enter (tick-pinned concentrated
/// positions), ranked by zero-size rate product (ties: lexicographic
/// pool ids), truncated to max_paths. Deterministic for a given graph.
[[nodiscard]] std::vector<std::vector<PoolId>> enumerate_paths(
    const graph::TokenGraph& graph, TokenId token_in, TokenId token_out,
    std::size_t max_hops, std::size_t max_paths);

/// Best execution for the query. Fails with kInvalidArgument on a
/// malformed query and kNotFound when no candidate path exists.
[[nodiscard]] Result<RouteResult> route(const graph::TokenGraph& graph,
                                        const RouteQuery& query,
                                        RouterContext& ctx);

/// Convenience overload with a fresh context.
[[nodiscard]] Result<RouteResult> route(const graph::TokenGraph& graph,
                                        const RouteQuery& query);

/// Input of the path's start token required to receive exactly
/// `amount_out` of its end token, computed by walking the path backward
/// through the concave continuation of each reverse hop (the sell-side
/// evaluation of arXiv 2604.02909). Fails with kCapacityExceeded when a
/// hop cannot emit the required amount.
[[nodiscard]] Result<double> required_input_for_output(
    const graph::TokenGraph& graph, TokenId token_in,
    const std::vector<PoolId>& path, double amount_out);

}  // namespace arb::core
