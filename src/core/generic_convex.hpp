#pragma once

/// \file generic_convex.hpp
/// The Convex Optimization strategy for loops that cross arbitrary AMM
/// curves (StableSwap, concentrated liquidity, ... — anything monotone,
/// concave and 0-at-0), where the barrier solver's analytic derivatives
/// are unavailable.
///
/// This is the derivative-free counterpart of core/convex.hpp: the same
/// re-parameterized compensated coordinate ascent as core/coordinate.hpp
/// (head input + forward fractions + constraint-following pair moves,
/// restarted from every rotation anchor), but over black-box SwapFn hops.
/// On all-CPMM loops it agrees with the barrier solver (tested); on mixed
/// loops it is the only route this library offers to eq. (8)'s optimum.

#include <vector>

#include "amm/generic_path.hpp"
#include "common/result.hpp"
#include "core/coordinate.hpp"
#include "optim/workspace.hpp"

namespace arb::core {

/// One hop of a mixed-venue loop: the swap function plus the CEX price
/// of its *input* token (hop i's input token is loop token t_i).
struct GenericHop {
  amm::SwapFn swap;
  double price_in = 0.0;
};

struct GenericConvexOptions {
  CoordinateOptions coordinate;
  /// Scale guess for the single-start optimizer that seeds each anchor
  /// (order of magnitude of a reasonable trade in hop-0 input tokens).
  double initial_scale = 1.0;
};

struct GenericConvexReport {
  std::vector<double> inputs;   ///< optimal d_i per hop
  std::vector<double> outputs;  ///< swap_i(d_i)
  double profit_usd = 0.0;      ///< Σ P_{t_i} · (out_{i−1} − d_i)
  int sweeps = 0;
  bool converged = false;
};

/// Maximizes monetized retained profit over the loop. Preconditions via
/// Result: at least 2 hops, callable swaps, positive prices. Returns the
/// all-zero solution when no rotation holds single-start profit.
///
/// The workspace overload threads the caller's optim::SolveWorkspace
/// through every internal buffer (forward-pass chain, coordinate-sweep
/// fraction vectors), and the rotation anchors index the caller's hop
/// array in place instead of copying it — steady-state solves reuse one
/// set of monotonically-grown buffers. Both overloads compute the exact
/// same arithmetic; the workspace-free one just pays a fresh workspace.
[[nodiscard]] Result<GenericConvexReport> solve_generic_convex(
    const std::vector<GenericHop>& hops, const GenericConvexOptions& options,
    optim::SolveWorkspace& workspace);

[[nodiscard]] Result<GenericConvexReport> solve_generic_convex(
    const std::vector<GenericHop>& hops,
    const GenericConvexOptions& options = {});

}  // namespace arb::core
