#include "core/study_io.hpp"

#include <algorithm>
#include <fstream>

#include "common/csv.hpp"

namespace arb::core {
namespace {

void outcome_row(CsvWriter& csv, const MarketStudy& study,
                 std::size_t loop_id, const StrategyOutcome& outcome) {
  const LoopComparison& row = study.loops[loop_id];
  csv.cell(loop_id);
  csv.cell(row.cycle.describe(study.market.graph));
  csv.cell(row.cycle.length());
  csv.cell(row.cycle.price_product(study.market.graph));
  csv.cell(std::string(to_string(outcome.kind)));
  csv.cell(study.market.graph.symbol(outcome.start_token));
  csv.cell(outcome.input);
  csv.cell(outcome.monetized_usd);
  csv.end_row();
}

}  // namespace

Status write_study_csv(const MarketStudy& study, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return make_error(ErrorCode::kIoError, "cannot write " + path);
  }
  CsvWriter csv(out);
  csv.header({"loop_id", "loop", "length", "price_product", "strategy",
              "start_token", "input", "monetized_usd"});
  for (std::size_t i = 0; i < study.loops.size(); ++i) {
    const LoopComparison& row = study.loops[i];
    for (const StrategyOutcome& t : row.traditional) {
      outcome_row(csv, study, i, t);
    }
    outcome_row(csv, study, i, row.max_price);
    outcome_row(csv, study, i, row.max_max);
    outcome_row(csv, study, i, row.convex.outcome);
  }
  return Status::success();
}

StudySummary summarize_study(const MarketStudy& study, double tolerance) {
  StudySummary summary;
  const auto accumulate = [&](StrategySummary& s, double value,
                              double max_max_value) {
    ++s.loops;
    s.total_usd += value;
    s.max_usd = std::max(s.max_usd, value);
    if (value >= max_max_value - tolerance) ++s.matches_max_max;
  };
  for (const LoopComparison& row : study.loops) {
    const double reference = row.max_max.monetized_usd;
    accumulate(summary.max_price, row.max_price.monetized_usd, reference);
    accumulate(summary.max_max, row.max_max.monetized_usd, reference);
    accumulate(summary.convex, row.convex.outcome.monetized_usd, reference);
  }
  return summary;
}

}  // namespace arb::core
