#pragma once

/// \file comparison.hpp
/// The paper's Section VI experiment harness: run every strategy on every
/// arbitrage loop of a market and collect the per-loop rows behind
/// Figs. 5–10.

#include <vector>

#include "common/result.hpp"
#include "core/convex.hpp"
#include "core/outcome.hpp"
#include "core/single_start.hpp"
#include "graph/cycle.hpp"
#include "market/snapshot.hpp"

namespace arb::core {

/// Everything measured on one loop.
struct LoopComparison {
  graph::Cycle cycle;
  /// One traditional outcome per rotation (start token), rotation order.
  std::vector<StrategyOutcome> traditional;
  StrategyOutcome max_price;
  StrategyOutcome max_max;
  ConvexSolution convex;

  explicit LoopComparison(graph::Cycle c) : cycle(std::move(c)) {}
};

struct ComparisonOptions {
  SingleStartOptions single_start;
  ConvexOptions convex;
};

/// Runs all strategies on each loop. Loops are taken as-is (callers
/// filter for profitability first if desired).
[[nodiscard]] Result<std::vector<LoopComparison>> compare_strategies(
    const graph::TokenGraph& graph, const market::CexPriceFeed& prices,
    const std::vector<graph::Cycle>& loops,
    const ComparisonOptions& options = {});

/// A full Section VI experiment: the filtered market the loops refer to,
/// plus the per-loop strategy comparisons.
struct MarketStudy {
  market::MarketSnapshot market;  ///< filtered snapshot (cycles point here)
  std::vector<LoopComparison> loops;
};

/// End-to-end Section VI pipeline: filter the snapshot with the paper's
/// pool-quality filter, enumerate arbitrage loops of `loop_length`, and
/// compare strategies on all of them.
[[nodiscard]] Result<MarketStudy> run_market_study(
    const market::MarketSnapshot& snapshot, std::size_t loop_length,
    const market::PoolFilter& filter = {},
    const ComparisonOptions& options = {});

}  // namespace arb::core
