#include "core/flow_nlp.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "amm/any_pool.hpp"
#include "amm/path.hpp"
#include "common/error.hpp"

namespace arb::core {
namespace {

/// Whisker of output retained at each hop of a constructed interior
/// start, keeping every surplus constraint strictly slack (same constant
/// as reduced_interior_start).
constexpr double kRetention = 1e-9;

/// Normalization basis of an edge at its endpoints: the physical reserve
/// the kernel's curvature lives on (stable kernels evaluate in raw units
/// through unit_in/out; everything else on the stored reserves).
double edge_basis_from(const LoopHopData& e) {
  return e.kind == HopKind::kStable ? e.stable_x0 : e.reserve_in;
}
double edge_basis_to(const LoopHopData& e) {
  return e.kind == HopKind::kStable ? e.stable_y0 : e.reserve_out;
}

/// Möbius-proxy composition of a support chain (exact for CPMM edges,
/// osculating proxy otherwise — sign of the marginal product at 0 is
/// exact either way).
amm::MobiusCoefficients chain_mobius(const FlowInstance& inst,
                                     const std::vector<std::size_t>& chain) {
  amm::MobiusCoefficients m = amm::MobiusCoefficients::identity();
  for (std::size_t e : chain) {
    const LoopHopData& hop = inst.edges[e];
    m = m.then_hop(hop.reserve_in, hop.reserve_out, hop.gamma);
  }
  return m;
}

[[nodiscard]] bool chain_is_cycle(const FlowInstance& inst,
                                  const std::vector<std::size_t>& chain) {
  return !chain.empty() &&
         inst.edge_from[chain.front()] == inst.edge_to[chain.back()];
}

struct NormalizedFlow {
  FlowInstance instance;          ///< units folded into edges/weights/budget
  std::vector<double> node_unit;  ///< raw tokens per normalized unit
  double scale = 1.0;             ///< objective units per normalized unit
};

/// Flow generalization of LoopNormalization: per-node unit from the
/// largest incident reserve basis, objective scale from the best
/// Möbius-proxy estimate over the support chains. Makes the barrier's
/// absolute tolerances scale-invariant.
NormalizedFlow normalize_flow(const FlowInstance& inst) {
  NormalizedFlow nf{inst, {}, 1.0};
  const std::size_t num_nodes = inst.node_tokens.size();
  nf.node_unit.assign(num_nodes, 0.0);
  for (std::size_t e = 0; e < inst.edges.size(); ++e) {
    nf.node_unit[inst.edge_from[e]] =
        std::max(nf.node_unit[inst.edge_from[e]], edge_basis_from(inst.edges[e]));
    nf.node_unit[inst.edge_to[e]] =
        std::max(nf.node_unit[inst.edge_to[e]], edge_basis_to(inst.edges[e]));
  }
  for (double& u : nf.node_unit) {
    if (!(u > 0.0) || !std::isfinite(u)) u = 1.0;
  }

  FlowInstance& n = nf.instance;
  for (std::size_t e = 0; e < n.edges.size(); ++e) {
    LoopHopData& hop = n.edges[e];
    const double u_in = nf.node_unit[n.edge_from[e]];
    const double u_out = nf.node_unit[n.edge_to[e]];
    hop.reserve_in /= u_in;
    hop.reserve_out /= u_out;
    hop.unit_in = u_in;
    hop.unit_out = u_out;
    hop.input_cap /= u_in;  // +inf stays +inf
  }
  if (n.source != FlowInstance::kNoNode) n.budget /= nf.node_unit[n.source];

  // Objective scale: for each support chain, the Möbius-proxy estimate
  // of the objective it can contribute (cycle: profit at the proxy
  // optimum, monetized at the head node's weight; path: proxy output of
  // the full budget, monetized at the tail).
  double est = 0.0;
  for (const auto& chain : n.support) {
    if (chain.empty()) continue;
    const amm::MobiusCoefficients m = chain_mobius(n, chain);
    const std::size_t head = n.edge_from[chain.front()];
    const std::size_t tail = n.edge_to[chain.back()];
    if (chain_is_cycle(n, chain)) {
      const double a = m.optimal_input();
      if (a > 0.0) {
        const double w = inst.node_weight[head] * nf.node_unit[head];
        est = std::max(est, w * (m.evaluate(a) - a));
      }
    } else if (n.budget > 0.0) {
      const double w = inst.node_weight[tail] * nf.node_unit[tail];
      est = std::max(est, w * m.evaluate(n.budget));
    }
  }
  if (!(est > 0.0) || !std::isfinite(est)) {
    for (std::size_t v = 0; v < num_nodes; ++v) {
      est = std::max(est, inst.node_weight[v] * nf.node_unit[v]);
    }
  }
  if (!(est > 0.0) || !std::isfinite(est)) est = 1.0;
  nf.scale = est;
  for (std::size_t v = 0; v < num_nodes; ++v) {
    n.node_weight[v] = inst.node_weight[v] * nf.node_unit[v] / nf.scale;
  }
  return nf;
}

/// Strictly feasible start for a normalized instance: marginal flows fed
/// along each support chain with per-hop retention, scale halved until
/// the whole point clears every constraint strictly.
Result<math::Vector> flow_interior_start(const FlowProblem& problem,
                                         const std::vector<double>& seeds,
                                         double margin) {
  const FlowInstance& inst = problem.instance();
  const std::size_t num_edges = inst.edges.size();
  double scale = 1.0;
  for (int attempt = 0; attempt < 80; ++attempt, scale *= 0.5) {
    math::Vector d(num_edges);
    d.assign(num_edges, 0.0);
    bool positive = true;
    for (std::size_t c = 0; c < inst.support.size() && positive; ++c) {
      if (!(seeds[c] > 0.0)) continue;
      double a = seeds[c] * scale;
      for (std::size_t e : inst.support[c]) {
        const double before = inst.edges[e].swap(d[e]);
        d[e] += a;
        a = (inst.edges[e].swap(d[e]) - before) * (1.0 - kRetention);
        if (!(a > 0.0) || !std::isfinite(a)) {
          positive = false;
          break;
        }
      }
    }
    // Marginal outputs underflowed: halving only makes it worse.
    if (!positive) break;
    if (problem.strictly_feasible(d, margin)) return d;
  }
  return make_error(ErrorCode::kInfeasible,
                    "could not construct strictly feasible flow start");
}

}  // namespace

// ---------------------------------------------------------------------------
// FlowInstance builders
// ---------------------------------------------------------------------------

Result<FlowInstance> FlowInstance::from_cycle(const graph::TokenGraph& graph,
                                              const market::CexPriceFeed& prices,
                                              const graph::Cycle& cycle) {
  const std::size_t n = cycle.length();
  FlowInstance inst;
  inst.graph = &graph;
  inst.node_tokens = cycle.tokens();
  inst.node_weight.resize(n);
  inst.node_constrained.assign(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    auto price = prices.price(inst.node_tokens[i]);
    if (!price) return price.error();
    inst.node_weight[i] = *price;
  }
  inst.edges.reserve(n);
  inst.edge_from.reserve(n);
  inst.edge_to.reserve(n);
  std::vector<std::size_t> chain(n);
  for (std::size_t i = 0; i < n; ++i) {
    inst.edges.push_back(make_edge_kernel(graph.pool(cycle.pools()[i]),
                                          inst.node_tokens[i],
                                          inst.node_tokens[(i + 1) % n]));
    inst.edge_from.push_back(i);
    inst.edge_to.push_back((i + 1) % n);
    chain[i] = i;
  }
  inst.support.push_back(std::move(chain));
  return inst;
}

Result<FlowInstance> FlowInstance::for_swap(
    const graph::TokenGraph& graph, TokenId token_in, TokenId token_out,
    const std::vector<std::vector<PoolId>>& paths, double budget) {
  if (paths.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "no candidate paths");
  }
  if (token_in == token_out) {
    return make_error(ErrorCode::kInvalidArgument,
                      "swap endpoints must differ");
  }
  if (!(budget >= 0.0) || !std::isfinite(budget)) {
    return make_error(ErrorCode::kInvalidArgument,
                      "budget must be finite and nonnegative");
  }

  FlowInstance inst;
  inst.graph = &graph;
  std::unordered_map<TokenId, std::size_t> node_of;
  const auto node_index = [&](TokenId token) {
    auto [it, inserted] = node_of.try_emplace(token, inst.node_tokens.size());
    if (inserted) inst.node_tokens.push_back(token);
    return it->second;
  };
  // Endpoints first so their indices are stable regardless of path order.
  inst.source = node_index(token_in);
  inst.sink = node_index(token_out);
  inst.budget = budget;

  // Dedup edges by (pool, direction): overlapping paths draw on one
  // consistent pool state through a shared flow variable.
  std::unordered_map<std::uint64_t, std::size_t> edge_of;
  for (const std::vector<PoolId>& path : paths) {
    if (path.empty()) {
      return make_error(ErrorCode::kInvalidArgument, "empty path");
    }
    std::vector<std::size_t> chain;
    chain.reserve(path.size());
    std::unordered_set<TokenId> seen{token_in};
    TokenId cur = token_in;
    for (std::size_t k = 0; k < path.size(); ++k) {
      if (!path[k].valid() || path[k].value() >= graph.pool_count()) {
        return make_error(ErrorCode::kInvalidArgument, "unknown pool in path");
      }
      const amm::AnyPool& pool = graph.pool(path[k]);
      if (!pool.contains(cur)) {
        return make_error(ErrorCode::kInvalidArgument,
                          "path hop does not contain the incoming token");
      }
      const TokenId next = pool.other(cur);
      const bool last = k + 1 == path.size();
      if (last ? next != token_out : !seen.insert(next).second) {
        return make_error(ErrorCode::kInvalidArgument,
                          last ? "path does not end at the target token"
                               : "path revisits a token");
      }
      if (!last && next == token_out) {
        return make_error(ErrorCode::kInvalidArgument,
                          "path passes through the target token");
      }
      const std::uint64_t key =
          (std::uint64_t{path[k].value()} << 32) | cur.value();
      auto [it, inserted] = edge_of.try_emplace(key, inst.edges.size());
      if (inserted) {
        inst.edges.push_back(make_edge_kernel(pool, cur, next));
        inst.edge_from.push_back(node_index(cur));
        inst.edge_to.push_back(node_index(next));
      }
      chain.push_back(it->second);
      cur = next;
    }
    inst.support.push_back(std::move(chain));
  }
  inst.node_weight.assign(inst.node_tokens.size(), 0.0);
  inst.node_weight[inst.sink] = 1.0;
  inst.node_constrained.assign(inst.node_tokens.size(), 1);
  inst.node_constrained[inst.sink] = 0;
  return inst;
}

// ---------------------------------------------------------------------------
// FlowProblem
// ---------------------------------------------------------------------------

FlowProblem::FlowProblem(FlowInstance instance) : instance_(std::move(instance)) {
  const std::size_t num_nodes = instance_.node_tokens.size();
  const std::size_t num_edges = instance_.edges.size();
  ARB_REQUIRE(num_edges >= 1, "flow instance needs at least one edge");
  ARB_REQUIRE(instance_.edge_from.size() == num_edges &&
                  instance_.edge_to.size() == num_edges,
              "edge topology size mismatch");
  ARB_REQUIRE(instance_.node_weight.size() == num_nodes &&
                  instance_.node_constrained.size() == num_nodes,
              "node array size mismatch");
  node_out_.resize(num_nodes);
  node_in_.resize(num_nodes);
  for (std::size_t e = 0; e < num_edges; ++e) {
    ARB_REQUIRE(instance_.edge_from[e] < num_nodes &&
                    instance_.edge_to[e] < num_nodes &&
                    instance_.edge_from[e] != instance_.edge_to[e],
                "edge endpoints out of range");
    node_out_[instance_.edge_from[e]].push_back(e);
    node_in_[instance_.edge_to[e]].push_back(e);
    if (std::isfinite(instance_.edges[e].input_cap)) capped_.push_back(e);
  }
  for (std::size_t v = 0; v < num_nodes; ++v) {
    if (instance_.node_constrained[v]) constrained_nodes_.push_back(v);
  }
}

double FlowProblem::objective(const math::Vector& d) const {
  ARB_REQUIRE(d.size() == instance_.edges.size(), "dimension mismatch");
  // value = Σ_e [w_to·F_e(d_e) − w_from·d_e]  (telescoped surplus form).
  double value = 0.0;
  for (std::size_t e = 0; e < instance_.edges.size(); ++e) {
    value += instance_.node_weight[instance_.edge_to[e]] *
                 instance_.edges[e].swap(d[e]) -
             instance_.node_weight[instance_.edge_from[e]] * d[e];
  }
  return -value;
}

math::Vector FlowProblem::objective_gradient(const math::Vector& d) const {
  math::Vector grad;
  objective_gradient_into(d, grad);
  return grad;
}

math::Matrix FlowProblem::objective_hessian(const math::Vector& d) const {
  math::Matrix hess;
  objective_hessian_into(d, hess);
  return hess;
}

void FlowProblem::objective_gradient_into(const math::Vector& d,
                                          math::Vector& grad) const {
  const std::size_t num_edges = instance_.edges.size();
  grad.assign(num_edges, 0.0);
  for (std::size_t e = 0; e < num_edges; ++e) {
    grad[e] = -(instance_.node_weight[instance_.edge_to[e]] *
                    instance_.edges[e].swap_deriv(d[e]) -
                instance_.node_weight[instance_.edge_from[e]]);
  }
}

void FlowProblem::objective_hessian_into(const math::Vector& d,
                                         math::Matrix& hess) const {
  const std::size_t num_edges = instance_.edges.size();
  hess.assign(num_edges, num_edges, 0.0);
  for (std::size_t e = 0; e < num_edges; ++e) {
    hess(e, e) = -instance_.node_weight[instance_.edge_to[e]] *
                 instance_.edges[e].swap_deriv2(d[e]);
  }
}

double FlowProblem::constraint(std::size_t i, const math::Vector& d) const {
  const std::size_t num_edges = instance_.edges.size();
  ARB_REQUIRE(i < num_inequalities(), "constraint index out of range");
  if (i < num_edges) {
    return -d[i];  // d_e >= 0
  }
  if (i < num_edges + constrained_nodes_.size()) {
    const std::size_t v = constrained_nodes_[i - num_edges];
    double g = -node_surplus_limit(v);
    for (std::size_t e : node_out_[v]) g += d[e];
    for (std::size_t e : node_in_[v]) g -= instance_.edges[e].swap(d[e]);
    return g;
  }
  const std::size_t e = capped_[i - num_edges - constrained_nodes_.size()];
  return d[e] - instance_.edges[e].input_cap;  // tick cap
}

math::Vector FlowProblem::constraint_gradient(std::size_t i,
                                              const math::Vector& d) const {
  math::Vector grad;
  constraint_gradient_into(i, d, grad);
  return grad;
}

math::Matrix FlowProblem::constraint_hessian(std::size_t i,
                                             const math::Vector& d) const {
  math::Matrix hess;
  constraint_hessian_into(i, d, hess);
  return hess;
}

void FlowProblem::constraint_gradient_into(std::size_t i, const math::Vector& d,
                                           math::Vector& grad) const {
  const std::size_t num_edges = instance_.edges.size();
  grad.assign(num_edges, 0.0);
  if (i < num_edges) {
    grad[i] = -1.0;
    return;
  }
  if (i < num_edges + constrained_nodes_.size()) {
    const std::size_t v = constrained_nodes_[i - num_edges];
    for (std::size_t e : node_out_[v]) grad[e] += 1.0;
    for (std::size_t e : node_in_[v]) {
      grad[e] -= instance_.edges[e].swap_deriv(d[e]);
    }
    return;
  }
  grad[capped_[i - num_edges - constrained_nodes_.size()]] = 1.0;
}

void FlowProblem::constraint_hessian_into(std::size_t i, const math::Vector& d,
                                          math::Matrix& hess) const {
  const std::size_t num_edges = instance_.edges.size();
  hess.assign(num_edges, num_edges, 0.0);
  if (i >= num_edges && i < num_edges + constrained_nodes_.size()) {
    const std::size_t v = constrained_nodes_[i - num_edges];
    for (std::size_t e : node_in_[v]) {
      hess(e, e) = -instance_.edges[e].swap_deriv2(d[e]);
    }
  }
  // Nonnegativity and cap constraints are linear: zero Hessian.
}

// ---------------------------------------------------------------------------
// solve_flow
// ---------------------------------------------------------------------------

Result<FlowSolution> solve_flow(const FlowInstance& instance,
                                const FlowOptions& options, FlowContext& ctx) {
  const std::size_t num_edges = instance.edges.size();
  const std::size_t num_nodes = instance.node_tokens.size();
  if (num_edges == 0) {
    return make_error(ErrorCode::kInvalidArgument, "flow instance has no edges");
  }
  if (instance.edge_from.size() != num_edges ||
      instance.edge_to.size() != num_edges ||
      instance.node_weight.size() != num_nodes ||
      instance.node_constrained.size() != num_nodes) {
    return make_error(ErrorCode::kInvalidArgument,
                      "flow instance arrays are inconsistent");
  }
  const bool routing = instance.source != FlowInstance::kNoNode;
  if (routing &&
      (instance.source >= num_nodes || instance.sink >= num_nodes ||
       !(instance.budget >= 0.0) || !std::isfinite(instance.budget))) {
    return make_error(ErrorCode::kInvalidArgument,
                      "malformed routing source/sink/budget");
  }
  // The interior start only explores support chains, so every edge must
  // lie on one (otherwise its nonnegativity constraint has no interior).
  std::vector<std::uint8_t> covered(num_edges, 0);
  for (const auto& chain : instance.support) {
    for (std::size_t e : chain) {
      if (e >= num_edges) {
        return make_error(ErrorCode::kInvalidArgument,
                          "support chain references unknown edge");
      }
      covered[e] = 1;
    }
  }
  if (std::find(covered.begin(), covered.end(), std::uint8_t{0}) !=
      covered.end()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "every edge must lie on a support chain");
  }
  for (const LoopHopData& e : instance.edges) {
    const bool sane = std::isfinite(e.reserve_in) && e.reserve_in > 0.0 &&
                      std::isfinite(e.reserve_out) && e.reserve_out > 0.0 &&
                      e.gamma > 0.0 && e.gamma <= 1.0 &&
                      (e.kind != HopKind::kStable ||
                       (std::isfinite(e.stable_x0) && e.stable_x0 > 0.0 &&
                        std::isfinite(e.stable_y0) && e.stable_y0 > 0.0 &&
                        std::isfinite(e.stable_d) && e.stable_d > 0.0));
    if (!sane) {
      return make_error(ErrorCode::kNumericFailure,
                        "degenerate edge state in flow instance");
    }
    // A concentrated edge pinned at its range boundary admits no input:
    // the cap constraint has no strict interior. Callers drop such
    // edges/paths (the routers do) or handle the error.
    if (!(e.input_cap > 0.0)) {
      return make_error(ErrorCode::kInfeasible,
                        "tick-pinned edge admits no input");
    }
  }

  const auto trivial_solution = [&]() {
    FlowSolution sol;
    sol.edge_inputs.assign(num_edges, 0.0);
    sol.edge_outputs.assign(num_edges, 0.0);
    sol.node_surplus.assign(num_nodes, 0.0);
    sol.trivial = true;
    return sol;
  };
  if (routing && instance.budget == 0.0) return trivial_solution();

  NormalizedFlow nf = normalize_flow(instance);
  const FlowInstance& n = nf.instance;

  // Chain seeds (normalized units of each chain's head token). Cycle
  // chains seed at half their Möbius-proxy optimum — nonpositive means
  // no profitable direction, the zero flow is optimal (the flow-form
  // price-product gate). Path chains split half the budget evenly.
  std::vector<double> seeds(n.support.size(), 0.0);
  bool any_seed = false;
  for (std::size_t c = 0; c < n.support.size(); ++c) {
    const auto& chain = n.support[c];
    if (chain.empty()) continue;
    if (chain_is_cycle(n, chain)) {
      const double best = chain_mobius(n, chain).optimal_input();
      if (best > 0.0) {
        seeds[c] = 0.5 * best;
        any_seed = true;
      }
    } else if (n.budget > 0.0) {
      seeds[c] = 0.5 * n.budget / static_cast<double>(n.support.size());
      any_seed = true;
    }
  }
  if (!any_seed) return trivial_solution();

  FlowProblem problem(n);
  auto start = flow_interior_start(problem, seeds, options.interior_margin);
  if (!start) return start.error();

  const optim::BarrierSolver solver(options.barrier);
  auto solved = solver.solve_into(problem, *start, ctx.workspace, ctx.report);
  if (!solved) return solved.error();

  FlowSolution sol;
  sol.edge_inputs.resize(num_edges);
  sol.edge_outputs.resize(num_edges);
  for (std::size_t e = 0; e < num_edges; ++e) {
    const double dn = std::max(0.0, ctx.report.x[e]);
    const LoopHopData& hop = problem.instance().edges[e];
    sol.edge_inputs[e] = dn * nf.node_unit[instance.edge_from[e]];
    sol.edge_outputs[e] = hop.swap(dn) * nf.node_unit[instance.edge_to[e]];
    // Plan honesty, matching solve_convex: report what execution attains
    // on non-CPMM venues, not the kernel's closed form.
    if (instance.graph != nullptr && hop.kind != HopKind::kCpmm) {
      sol.edge_outputs[e] = instance.graph->pool(hop.pool)
                                .quote(hop.token_in, sol.edge_inputs[e])
                                .amount_out;
    }
  }
  sol.node_surplus.assign(num_nodes, 0.0);
  for (std::size_t e = 0; e < num_edges; ++e) {
    sol.node_surplus[instance.edge_to[e]] += sol.edge_outputs[e];
    sol.node_surplus[instance.edge_from[e]] -= sol.edge_inputs[e];
  }
  for (std::size_t v = 0; v < num_nodes; ++v) {
    sol.objective += instance.node_weight[v] * sol.node_surplus[v];
  }
  sol.duality_gap = ctx.report.duality_gap * nf.scale;
  sol.iterations = ctx.report.total_newton_iterations;
  return sol;
}

Result<FlowSolution> solve_flow(const FlowInstance& instance,
                                const FlowOptions& options) {
  FlowContext ctx;
  return solve_flow(instance, options, ctx);
}

// ---------------------------------------------------------------------------
// attribute_support
// ---------------------------------------------------------------------------

PathAttribution attribute_support(const FlowInstance& instance,
                                  const FlowSolution& solution) {
  PathAttribution att;
  att.inputs.assign(instance.support.size(), 0.0);
  att.outputs.assign(instance.support.size(), 0.0);
  std::vector<double> rem_in = solution.edge_inputs;

  for (std::size_t c = 0; c < instance.support.size(); ++c) {
    const auto& chain = instance.support[c];
    if (chain.empty()) continue;
    // Unit propagation: carrying 1 source unit along the chain draws
    // unit[k] of edge k's input (linear: a path's share of an edge's
    // output is proportional to its share of the edge's input).
    std::vector<double> unit(chain.size());
    double carry = 1.0;
    bool dead = false;
    for (std::size_t k = 0; k < chain.size(); ++k) {
      const std::size_t e = chain[k];
      unit[k] = carry;
      if (!(solution.edge_inputs[e] > 0.0)) {
        dead = true;
        break;
      }
      carry *= solution.edge_outputs[e] / solution.edge_inputs[e];
    }
    if (dead) continue;
    double amount = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < chain.size(); ++k) {
      if (unit[k] > 0.0) amount = std::min(amount, rem_in[chain[k]] / unit[k]);
    }
    if (!(amount > 0.0) || !std::isfinite(amount)) continue;
    for (std::size_t k = 0; k < chain.size(); ++k) {
      rem_in[chain[k]] = std::max(0.0, rem_in[chain[k]] - amount * unit[k]);
    }
    att.inputs[c] = amount;
    att.outputs[c] = amount * carry;
  }
  return att;
}

}  // namespace arb::core
