#include "core/loop_nlp.hpp"

#include <cmath>

#include "amm/any_pool.hpp"
#include "amm/path.hpp"
#include "common/error.hpp"

namespace arb::core {

double LoopHopData::swap(double d) const {
  if (kind == HopKind::kStable) {
    // Fixed-D closed form in raw units (the stable curve is not
    // scale-invariant): F(d) = γ·(y₀ − Y(x₀ + d)).
    const amm::StableCurve curve{stable_d, stable_ann};
    const double out_raw =
        gamma * std::max(0.0, stable_y0 - curve.y(stable_x0 + d * unit_in));
    return out_raw / unit_out;
  }
  // CPMM on real reserves; for concentrated hops the same formula on the
  // virtual reserves is exactly the in-range V3 swap (the cap constraint
  // keeps iterates in range).
  const double effective = gamma * d;
  return effective * reserve_out / (reserve_in + effective);
}

double LoopHopData::swap_deriv(double d) const {
  if (kind == HopKind::kStable) {
    const amm::StableCurve curve{stable_d, stable_ann};
    return -gamma * curve.dy_dx(stable_x0 + d * unit_in) * unit_in / unit_out;
  }
  const double denom = reserve_in + gamma * d;
  return gamma * reserve_in * reserve_out / (denom * denom);
}

double LoopHopData::swap_deriv2(double d) const {
  if (kind == HopKind::kStable) {
    const amm::StableCurve curve{stable_d, stable_ann};
    return -gamma * curve.d2y_dx2(stable_x0 + d * unit_in) * unit_in *
           unit_in / unit_out;
  }
  const double denom = reserve_in + gamma * d;
  return -2.0 * gamma * gamma * reserve_in * reserve_out /
         (denom * denom * denom);
}

LoopHopData make_edge_kernel(const amm::AnyPool& any, TokenId token_in,
                             TokenId token_out) {
  LoopHopData hop;
  hop.token_in = token_in;
  hop.token_out = token_out;
  hop.pool = any.id();
  switch (any.kind()) {
    case amm::PoolKind::kCpmm: {
      const amm::CpmmPool& pool = any.cpmm();
      hop.kind = HopKind::kCpmm;
      hop.reserve_in = pool.reserve_of(token_in);
      hop.reserve_out = pool.reserve_of(token_out);
      hop.gamma = pool.gamma();
      break;
    }
    case amm::PoolKind::kStable: {
      const amm::StablePool& pool = any.stable();
      const amm::StableCurve curve = pool.curve();
      hop.kind = HopKind::kStable;
      hop.gamma = 1.0 - pool.fee();
      hop.stable_d = curve.d;
      hop.stable_ann = curve.ann;
      hop.stable_x0 = pool.reserve_of(token_in);
      hop.stable_y0 = pool.reserve_of(token_out);
      // Osculating CPMM proxy: reserves (X_p, Y_p) whose CPMM swap
      // matches F'(0) = γ·a and F''(0) = γ·b (a = −Y'(x₀) > 0,
      // b = −Y''(x₀) < 0): X_p = −2γ·a/b, Y_p = a·X_p. Used only by
      // the Möbius chain machinery (interior starts, warm projection);
      // swap()/derivs evaluate the exact closed form.
      {
        const double a = -curve.dy_dx(hop.stable_x0);
        const double b = -curve.d2y_dx2(hop.stable_x0);
        hop.reserve_in = -2.0 * hop.gamma * a / b;
        hop.reserve_out = a * hop.reserve_in;
      }
      break;
    }
    case amm::PoolKind::kConcentrated: {
      const amm::ConcentratedPool& pool = any.concentrated();
      hop.kind = HopKind::kConcentrated;
      hop.gamma = 1.0 - pool.fee();
      const double liq = pool.liquidity();
      const double sp = pool.sqrt_price();
      if (token_in == pool.token0()) {
        // Selling token0: virtual reserves x_v = L/√P, y_v = L·√P;
        // the CPMM formula on them is exactly L·(√P − √P'). In-range
        // input cap: 1/√P + γ·d/L ≤ 1/√lo.
        hop.reserve_in = liq / sp;
        hop.reserve_out = liq * sp;
        hop.input_cap = liq * (1.0 / pool.sqrt_lo() - 1.0 / sp) / hop.gamma;
      } else {
        // Selling token1: x_v = L·√P, y_v = L/√P; cap at √hi.
        hop.reserve_in = liq * sp;
        hop.reserve_out = liq / sp;
        hop.input_cap = liq * (pool.sqrt_hi() - sp) / hop.gamma;
      }
      break;
    }
  }
  return hop;
}

Result<std::vector<LoopHopData>> make_hop_data(
    const graph::TokenGraph& graph, const market::CexPriceFeed& prices,
    const graph::Cycle& cycle, std::size_t start_offset) {
  const graph::Cycle rotated = cycle.rotated(start_offset);
  const std::size_t n = rotated.length();
  std::vector<LoopHopData> hops(n);
  for (std::size_t i = 0; i < n; ++i) {
    const amm::AnyPool& any = graph.pool(rotated.pools()[i]);
    const TokenId token_in = rotated.tokens()[i];
    const TokenId token_out = rotated.tokens()[(i + 1) % n];
    auto price_in = prices.price(token_in);
    if (!price_in) return price_in.error();
    auto price_out = prices.price(token_out);
    if (!price_out) return price_out.error();
    hops[i] = make_edge_kernel(any, token_in, token_out);
    hops[i].price_in = *price_in;
    hops[i].price_out = *price_out;
  }
  return hops;
}

// ---------------------------------------------------------------------------
// ReducedLoopProblem
// ---------------------------------------------------------------------------

ReducedLoopProblem::ReducedLoopProblem(std::vector<LoopHopData> hops)
    : hops_(std::move(hops)) {
  ARB_REQUIRE(hops_.size() >= 2, "loop needs at least 2 hops");
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    if (std::isfinite(hops_[i].input_cap)) capped_.push_back(i);
  }
}

double ReducedLoopProblem::objective(const math::Vector& d) const {
  ARB_REQUIRE(d.size() == hops_.size(), "dimension mismatch");
  // profit = Σ_i [P_{t_{i+1}}·F_i(d_i) − P_{t_i}·d_i]  (telescoped form).
  double profit = 0.0;
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    profit += hops_[i].price_out * hops_[i].swap(d[i]) -
              hops_[i].price_in * d[i];
  }
  return -profit;
}

math::Vector ReducedLoopProblem::objective_gradient(
    const math::Vector& d) const {
  math::Vector grad;
  objective_gradient_into(d, grad);
  return grad;
}

math::Matrix ReducedLoopProblem::objective_hessian(
    const math::Vector& d) const {
  math::Matrix hess;
  objective_hessian_into(d, hess);
  return hess;
}

void ReducedLoopProblem::objective_gradient_into(const math::Vector& d,
                                                 math::Vector& grad) const {
  grad.assign(hops_.size(), 0.0);
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    grad[i] = -(hops_[i].price_out * hops_[i].swap_deriv(d[i]) -
                hops_[i].price_in);
  }
}

void ReducedLoopProblem::objective_hessian_into(const math::Vector& d,
                                                math::Matrix& hess) const {
  hess.assign(hops_.size(), hops_.size(), 0.0);
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    hess(i, i) = -hops_[i].price_out * hops_[i].swap_deriv2(d[i]);
  }
}

double ReducedLoopProblem::constraint(std::size_t i,
                                      const math::Vector& d) const {
  const std::size_t n = hops_.size();
  ARB_REQUIRE(i < 2 * n + capped_.size(), "constraint index out of range");
  if (i < n) {
    return -d[i];  // d_i >= 0
  }
  if (i < 2 * n) {
    const std::size_t k = i - n;  // flow: d_{k+1} <= F_k(d_k)
    return d[(k + 1) % n] - hops_[k].swap(d[k]);
  }
  const std::size_t k = capped_[i - 2 * n];  // tick cap: d_k <= cap_k
  return d[k] - hops_[k].input_cap;
}

math::Vector ReducedLoopProblem::constraint_gradient(
    std::size_t i, const math::Vector& d) const {
  math::Vector grad;
  constraint_gradient_into(i, d, grad);
  return grad;
}

math::Matrix ReducedLoopProblem::constraint_hessian(
    std::size_t i, const math::Vector& d) const {
  math::Matrix hess;
  constraint_hessian_into(i, d, hess);
  return hess;
}

void ReducedLoopProblem::constraint_gradient_into(std::size_t i,
                                                  const math::Vector& d,
                                                  math::Vector& grad) const {
  const std::size_t n = hops_.size();
  grad.assign(n, 0.0);
  if (i < n) {
    grad[i] = -1.0;
    return;
  }
  if (i < 2 * n) {
    const std::size_t k = i - n;
    grad[(k + 1) % n] += 1.0;
    grad[k] -= hops_[k].swap_deriv(d[k]);
    return;
  }
  grad[capped_[i - 2 * n]] = 1.0;  // linear cap constraint
}

void ReducedLoopProblem::constraint_hessian_into(std::size_t i,
                                                 const math::Vector& d,
                                                 math::Matrix& hess) const {
  const std::size_t n = hops_.size();
  hess.assign(n, n, 0.0);
  if (i >= n && i < 2 * n) {
    const std::size_t k = i - n;
    hess(k, k) = -hops_[k].swap_deriv2(d[k]);
  }
  // Cap constraints (i >= 2n) are linear: zero Hessian.
}

// ---------------------------------------------------------------------------
// FullLoopProblem
// ---------------------------------------------------------------------------

FullLoopProblem::FullLoopProblem(std::vector<LoopHopData> hops)
    : hops_(std::move(hops)) {
  ARB_REQUIRE(hops_.size() >= 2, "loop needs at least 2 hops");
}

double FullLoopProblem::objective(const math::Vector& z) const {
  const std::size_t n = hops_.size();
  ARB_REQUIRE(z.size() == 2 * n, "dimension mismatch");
  // profit = Σ_i P_{t_{i+1}}·(out_i − in_{i+1}).
  double profit = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    profit += hops_[i].price_out * (z[n + i] - z[(i + 1) % n]);
  }
  return -profit;
}

math::Vector FullLoopProblem::objective_gradient(const math::Vector& z) const {
  math::Vector grad;
  objective_gradient_into(z, grad);
  return grad;
}

math::Matrix FullLoopProblem::objective_hessian(const math::Vector& z) const {
  math::Matrix hess;
  objective_hessian_into(z, hess);
  return hess;
}

void FullLoopProblem::objective_gradient_into(const math::Vector& z,
                                              math::Vector& grad) const {
  const std::size_t n = hops_.size();
  ARB_REQUIRE(z.size() == 2 * n, "dimension mismatch");
  grad.assign(2 * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    grad[n + i] += -hops_[i].price_out;     // d/d out_i
    grad[(i + 1) % n] += hops_[i].price_out;  // d/d in_{i+1}
  }
}

void FullLoopProblem::objective_hessian_into(const math::Vector& z,
                                             math::Matrix& hess) const {
  ARB_REQUIRE(z.size() == 2 * hops_.size(), "dimension mismatch");
  hess.assign(2 * hops_.size(), 2 * hops_.size(), 0.0);  // linear objective
}

double FullLoopProblem::constraint(std::size_t i, const math::Vector& z) const {
  const std::size_t n = hops_.size();
  ARB_REQUIRE(i < 3 * n, "constraint index out of range");
  if (i < n) {
    return -z[i];  // in_i >= 0
  }
  if (i < 2 * n) {
    const std::size_t k = i - n;  // out_k <= F_k(in_k)
    return z[n + k] - hops_[k].swap(z[k]);
  }
  const std::size_t k = i - 2 * n;  // in_{k+1} <= out_k
  return z[(k + 1) % n] - z[n + k];
}

math::Vector FullLoopProblem::constraint_gradient(std::size_t i,
                                                  const math::Vector& z) const {
  math::Vector grad;
  constraint_gradient_into(i, z, grad);
  return grad;
}

math::Matrix FullLoopProblem::constraint_hessian(std::size_t i,
                                                 const math::Vector& z) const {
  math::Matrix hess;
  constraint_hessian_into(i, z, hess);
  return hess;
}

void FullLoopProblem::constraint_gradient_into(std::size_t i,
                                               const math::Vector& z,
                                               math::Vector& grad) const {
  const std::size_t n = hops_.size();
  grad.assign(2 * n, 0.0);
  if (i < n) {
    grad[i] = -1.0;
    return;
  }
  if (i < 2 * n) {
    const std::size_t k = i - n;
    grad[n + k] = 1.0;
    grad[k] = -hops_[k].swap_deriv(z[k]);
    return;
  }
  const std::size_t k = i - 2 * n;
  grad[(k + 1) % n] += 1.0;
  grad[n + k] -= 1.0;
}

void FullLoopProblem::constraint_hessian_into(std::size_t i,
                                              const math::Vector& z,
                                              math::Matrix& hess) const {
  const std::size_t n = hops_.size();
  hess.assign(2 * n, 2 * n, 0.0);
  if (i >= n && i < 2 * n) {
    const std::size_t k = i - n;
    hess(k, k) = -hops_[k].swap_deriv2(z[k]);
  }
}

// ---------------------------------------------------------------------------
// Interior starts
// ---------------------------------------------------------------------------

Result<math::Vector> reduced_interior_start(
    const std::vector<LoopHopData>& hops) {
  const std::size_t n = hops.size();

  // Single-start optimum of this rotation via the Möbius closed form.
  // For non-CPMM hops the reserves are the osculating proxy, so
  // best_input is approximate there — but its sign is exact (the proxy
  // matches F'(0), hence the marginal price product at 0), which is all
  // feasibility needs; the magnitude only seeds the halving search.
  amm::MobiusCoefficients m = amm::MobiusCoefficients::identity();
  for (const LoopHopData& hop : hops) {
    m = m.then_hop(hop.reserve_in, hop.reserve_out, hop.gamma);
  }
  const double best_input = m.optimal_input();
  if (best_input <= 0.0) {
    return make_error(ErrorCode::kInfeasible,
                      "loop has no strict interior (price product <= 1)");
  }

  // Feed a fraction of the optimum around the loop, retaining a whisker
  // at each hop so every flow constraint holds strictly; shrink the scale
  // until the wrap-around constraint d_0 < F_{n-1}(d_{n-1}) is strict too.
  constexpr double kRetention = 1e-9;
  constexpr double kCapHeadroom = 1.0 - 1e-6;
  double scale = 0.5;
  for (int attempt = 0; attempt < 80; ++attempt, scale *= 0.5) {
    math::Vector d(n);
    d[0] = best_input * scale;
    bool positive = d[0] > 0.0;
    // Tick caps shrink with the inputs, so a violation is recoverable by
    // halving (unlike positivity underflow, which never is).
    bool in_caps = d[0] < hops[0].input_cap * kCapHeadroom;
    for (std::size_t i = 0; i + 1 < n && positive && in_caps; ++i) {
      d[i + 1] = hops[i].swap(d[i]) * (1.0 - kRetention);
      positive = d[i + 1] > 0.0;
      in_caps = d[i + 1] < hops[i + 1].input_cap * kCapHeadroom;
    }
    if (!positive) break;
    if (!in_caps) continue;
    const double wrap_output = hops[n - 1].swap(d[n - 1]);
    if (wrap_output * (1.0 - kRetention) > d[0]) {
      return d;
    }
  }
  return make_error(ErrorCode::kInfeasible,
                    "could not construct strictly feasible interior point");
}

Result<math::Vector> full_interior_start(const std::vector<LoopHopData>& hops) {
  auto reduced = reduced_interior_start(hops);
  if (!reduced) return reduced.error();
  const std::size_t n = hops.size();
  const math::Vector& d = *reduced;
  math::Vector z(2 * n);
  for (std::size_t i = 0; i < n; ++i) z[i] = d[i];
  for (std::size_t i = 0; i < n; ++i) {
    // out_i strictly between in_{i+1} and F_i(in_i).
    z[n + i] = 0.5 * (d[(i + 1) % n] + hops[i].swap(d[i]));
  }
  return z;
}

}  // namespace arb::core
