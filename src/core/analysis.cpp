#include "core/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "amm/any_pool.hpp"
#include "amm/generic_path.hpp"
#include "amm/path.hpp"
#include "core/single_start.hpp"

namespace arb::core {

Result<LoopDiagnostics> analyze_loop(const graph::TokenGraph& graph,
                                     const market::CexPriceFeed& prices,
                                     const graph::Cycle& cycle) {
  LoopDiagnostics diag;
  diag.length = cycle.length();
  diag.price_product = cycle.price_product(graph);
  diag.log_margin = std::log(diag.price_product);

  // Pool TVLs at CEX prices.
  diag.bottleneck_tvl_usd = std::numeric_limits<double>::infinity();
  for (const PoolId pool_id : cycle.pools()) {
    const amm::AnyPool& pool = graph.pool(pool_id);
    double tvl = 0.0;
    for (const TokenId token : {pool.token0(), pool.token1()}) {
      auto price = prices.price(token);
      if (!price) return price.error();
      tvl += *price * pool.reserve_of(token);
    }
    diag.loop_tvl_usd += tvl;
    diag.bottleneck_tvl_usd = std::min(diag.bottleneck_tvl_usd, tvl);
  }

  // Best rotation (MaxMax) for profit; rotation 0 for sizing.
  SingleStartOptions options;
  options.use_bisection = false;  // closed form: diagnostics are cheap
  auto best = evaluate_max_max(graph, prices, cycle, options);
  if (!best) return best.error();
  diag.best_profit_usd = best->monetized_usd;

  amm::OptimalTrade trade;
  if (cycle.all_cpmm(graph)) {
    trade = amm::optimize_input_analytic(cycle.path(graph, 0));
  } else {
    amm::GenericOptimizeOptions generic;
    generic.initial_scale = std::max(
        generic.initial_scale,
        1e-3 * graph.pool(cycle.pools()[0]).reserve_of(cycle.tokens()[0]));
    auto solved =
        amm::optimize_input_generic(cycle.generic_path(graph, 0), generic);
    if (!solved) return solved.error();
    trade = *solved;
  }
  diag.optimal_input = trade.input;
  diag.input_to_reserve_ratio =
      trade.input / graph.pool(cycle.pools()[0]).reserve_of(
                        cycle.tokens()[0]);
  diag.profit_per_tvl =
      diag.loop_tvl_usd > 0.0 ? diag.best_profit_usd / diag.loop_tvl_usd
                              : 0.0;
  return diag;
}

}  // namespace arb::core
