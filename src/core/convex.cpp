#include "core/convex.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "amm/any_pool.hpp"
#include "amm/path.hpp"
#include "common/logging.hpp"
#include "core/closed_form.hpp"
#include "optim/phase1.hpp"

namespace arb::core {
namespace {

/// Zero-profit solution (the Section IV theorem case).
ConvexSolution zero_solution(const graph::Cycle& cycle) {
  ConvexSolution solution;
  solution.outcome.kind = StrategyKind::kConvexOptimization;
  solution.outcome.start_token = cycle.tokens().front();
  for (const TokenId token : cycle.tokens()) {
    solution.outcome.profits.push_back(TokenProfit{token, 0.0});
  }
  solution.inputs.assign(cycle.length(), 0.0);
  solution.outputs.assign(cycle.length(), 0.0);
  return solution;
}

/// Collects per-token profits and the monetized total from per-hop
/// (input, output) amounts. Token t_j retains out_{j-1} − in_j.
void fill_profits(const std::vector<LoopHopData>& hops,
                  const std::vector<double>& inputs,
                  const std::vector<double>& outputs,
                  StrategyOutcome& outcome) {
  const std::size_t n = hops.size();
  outcome.profits.clear();
  outcome.monetized_usd = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t prev = (j + n - 1) % n;
    const double retained = outputs[prev] - inputs[j];
    outcome.profits.push_back(TokenProfit{hops[j].token_in, retained});
    outcome.monetized_usd += hops[j].price_in * retained;
  }
}

/// Normalization making the barrier solve scale-invariant. Changing the
/// unit of token t_i by u_i (amounts ÷ u_i, prices × u_i) is an exact
/// symmetry of the problem; choosing u_i = x_i (each hop's input-side
/// reserve) plus a common price rescale brings every quantity to O(1)
/// regardless of whether reserves are 1e-3 or 1e9. The tolerances of the
/// interior-point method then mean the same thing at every market scale.
struct LoopNormalization {
  std::vector<double> token_unit;  ///< u_i for token t_i (hop i's input)
  double price_scale = 1.0;

  static LoopNormalization create(const std::vector<LoopHopData>& hops) {
    const std::size_t n = hops.size();
    LoopNormalization norm;
    norm.token_unit.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Stable hops: the reserve fields hold the osculating proxy, whose
      // depth can dwarf the actual balances near the flat region of the
      // curve — normalize by the real input-side balance instead so the
      // units stay physically meaningful.
      norm.token_unit[i] = hops[i].kind == HopKind::kStable
                               ? hops[i].stable_x0
                               : hops[i].reserve_in;
    }
    // Scale prices by the loop's MaxMax optimum (closed form per
    // rotation), so the normalized optimal profit is ~1 and the solver's
    // duality gap means *relative* accuracy independent of how fat the
    // loop is. Using the best rotation matters: anchoring on a rotation
    // whose start token is nearly worthless would poison the scale.
    double profit_usd = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      amm::MobiusCoefficients m = amm::MobiusCoefficients::identity();
      for (std::size_t i = 0; i < n; ++i) {
        const LoopHopData& hop = hops[(r + i) % n];
        m = m.then_hop(hop.reserve_in, hop.reserve_out, hop.gamma);
      }
      const double input = m.optimal_input();
      profit_usd = std::max(
          profit_usd, hops[r].price_in * (m.evaluate(input) - input));
    }
    if (profit_usd > 0.0 && std::isfinite(profit_usd)) {
      norm.price_scale = profit_usd;
    } else {
      double max_price = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        max_price =
            std::max(max_price, hops[i].price_in * norm.token_unit[i]);
      }
      norm.price_scale = max_price > 0.0 ? max_price : 1.0;
    }
    return norm;
  }

  [[nodiscard]] std::vector<LoopHopData> normalize(
      const std::vector<LoopHopData>& hops) const {
    const std::size_t n = hops.size();
    std::vector<LoopHopData> out = hops;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t next = (i + 1) % n;
      out[i].reserve_in = hops[i].reserve_in / token_unit[i];
      out[i].reserve_out = hops[i].reserve_out / token_unit[next];
      out[i].price_in = hops[i].price_in * token_unit[i] / price_scale;
      out[i].price_out = hops[i].price_out * token_unit[next] / price_scale;
      // Per-kind kernel state: the stable closed form evaluates in raw
      // units through these factors; tick caps rescale like inputs
      // (inf / u stays inf on CPMM/stable hops).
      out[i].unit_in = token_unit[i];
      out[i].unit_out = token_unit[next];
      out[i].input_cap = hops[i].input_cap / token_unit[i];
    }
    return out;
  }
};

/// Projects a previous optimum back into the strict interior of the
/// reduced feasible set after a reserve perturbation. At a convex
/// optimum every intermediate flow constraint is tight (forwarding more
/// through a monotone F_i is always better), so the stored iterate is —
/// up to the perturbation δ — the tight chain d_{i+1} = F_i(d_i) grown
/// from its own first component. The projection rebuilds exactly that
/// chain on the perturbed pools, anchored at a₀ = min(d₀, ¾·Δ̄) where Δ̄
/// is the loop's break-even input (the fixed point of the whole-loop
/// Möbius map G; the cap keeps the anchor interior when the perturbation
/// pushed d₀ past break-even). Each link is shaved by
///   ε = min(margin, 1 − (a₀/G(a₀))^{1/2n}),
/// which makes every flow constraint strict while provably preserving
/// wrap slack: concavity of each F_i through the origin gives
/// F_{n−1}(d_{n−1}) ≥ (1−ε)^{n−1}·G(a₀) > a₀ because
/// (1−ε)^{2n} ≥ a₀/G(a₀). Scaling ε with the loop's own profitability is
/// what earlier margin-first schemes missed: a fixed shave larger than
/// the wrap slack leaves a barely-profitable loop with NO margin-
/// feasible point at all, cold-starting exactly the flickering loops
/// warm restarts are for. Returns false — caller cold-starts — when the
/// anchor is non-positive or the perturbed loop is numerically
/// profitless end-to-end.
bool project_interior(const std::vector<LoopHopData>& hops, math::Vector& d,
                      double margin) {
  const std::size_t n = hops.size();
  if (!(d[0] > 0.0) || !std::isfinite(d[0])) return false;
  amm::MobiusCoefficients loop = amm::MobiusCoefficients::identity();
  for (const LoopHopData& hop : hops) {
    loop = loop.then_hop(hop.reserve_in, hop.reserve_out, hop.gamma);
  }
  // G(Δ) = aΔ/(b+cΔ); profitable loops have a > b, break-even (a−b)/c.
  if (!(loop.a > loop.b) || !(loop.c > 0.0)) return false;
  const double break_even = (loop.a - loop.b) / loop.c;
  // Per-kind hop guard: the anchor must also clear the first hop's tick
  // cap (min with +inf is the identity on CPMM/stable hops, so all-CPMM
  // arithmetic is untouched).
  const double anchor = std::min(
      std::min(d[0], 0.75 * break_even), 0.9 * hops[0].input_cap);
  const double gain = loop.evaluate(anchor);
  if (!(anchor > 0.0) || !(gain > anchor)) return false;
  const double shave = std::min(
      margin,
      1.0 - std::pow(anchor / gain, 1.0 / (2.0 * static_cast<double>(n))));
  if (!(shave > 0.0)) return false;
  d[0] = anchor;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    d[i + 1] = hops[i].swap(d[i]) * (1.0 - shave);
    if (!(d[i + 1] > 0.0)) return false;
    // A rebuilt link crossing the next hop's tick cap means the
    // perturbation moved the range edge under the cached iterate: the
    // caller cold-starts (strict feasibility would reject it anyway).
    if (!(d[i + 1] < hops[i + 1].input_cap)) return false;
  }
  return true;
}

/// Generic route: eq. (8) sized by the derivative-free coordinate
/// solver over black-box SwapFn hops. No duality certificate (the gap
/// reported is 0), no warm starts — reached when the mixed fast path is
/// disabled, on tick-crossing/degenerate mixed state, or as the rescue
/// rung after a barrier failure.
Result<ConvexSolution> solve_convex_generic(const graph::TokenGraph& graph,
                                            const market::CexPriceFeed& prices,
                                            const graph::Cycle& cycle,
                                            const ConvexOptions& options,
                                            ConvexContext& ctx) {
  ctx.used_generic = true;
  // The coordinate solver's iterates don't map back to the barrier's
  // central path, so a cached warm slot is meaningless after this route.
  if (ctx.warm) ctx.warm->valid = false;

  const std::size_t n = cycle.length();
  std::vector<GenericHop> hops(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto price = prices.price(cycle.tokens()[i]);
    if (!price) return price.error();
    hops[i] = GenericHop{
        amm::swap_fn(graph.pool(cycle.pools()[i]), cycle.tokens()[i]),
        *price};
  }
  GenericConvexOptions generic_options = options.generic;
  // Seed the bracket search at a fraction of the first hop's input-side
  // depth so the expansion starts at the right order of magnitude.
  generic_options.initial_scale = std::max(
      generic_options.initial_scale,
      1e-3 * graph.pool(cycle.pools()[0]).reserve_of(cycle.tokens()[0]));

  auto report = solve_generic_convex(hops, generic_options, ctx.workspace);
  if (!report) return report.error();

  ConvexSolution solution;
  solution.outcome.kind = StrategyKind::kConvexOptimization;
  solution.outcome.start_token = cycle.tokens().front();
  solution.inputs = std::move(report->inputs);
  solution.outputs = std::move(report->outputs);
  solution.duality_gap_usd = 0.0;
  solution.outcome.solver_iterations = report->sweeps;
  solution.outcome.monetized_usd = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t prev = (j + n - 1) % n;
    const double retained = solution.outputs[prev] - solution.inputs[j];
    solution.outcome.profits.push_back(
        TokenProfit{cycle.tokens()[j], retained});
    solution.outcome.monetized_usd += hops[j].price_in * retained;
  }
  return solution;
}

}  // namespace

Result<ConvexSolution> solve_convex(const graph::TokenGraph& graph,
                                    const market::CexPriceFeed& prices,
                                    const graph::Cycle& cycle,
                                    const ConvexOptions& options,
                                    ConvexContext& ctx) {
  ctx.warm_hit = false;
  ctx.used_closed_form = false;
  ctx.used_generic = false;
  ctx.used_fallback = false;
  // Iteration counters stay meaningful even on the analytic early-return
  // paths below, so callers can read ctx.report after any outcome.
  ctx.report.outer_iterations = 0;
  ctx.report.total_newton_iterations = 0;

  // Theorem (Section IV): no arbitrage under MaxMax ⇒ none under Convex.
  // Detect via the loop price product and skip the solver outright.
  // Negated-comparison form so a NaN product (corrupted reserves) lands
  // here as "no opportunity" instead of falling through to the solver.
  if (!(cycle.price_product(graph) > 1.0 + options.no_arbitrage_margin)) {
    // The warm slot is deliberately KEPT. A profitless visit proves the
    // current state has a zero optimum, not that the cached iterate is
    // bad: when the loop swings profitable again the previous interior
    // point is still an excellent restart (the interior projection and
    // strict-feasibility check already guard against a genuinely stale
    // iterate, falling back to cold). Invalidating here is what starved
    // the streaming warm-hit rate — every gated visit forced the next
    // profitable solve cold.
    return zero_solution(cycle);
  }

  // Mixed loops (any non-CPMM hop) take the same barrier path through
  // the analytic per-kind hop kernels, unless the fast path is disabled
  // or the full transcription was requested (the per-kind kernels are
  // wired into the reduced form only).
  const bool mixed = !cycle.all_cpmm(graph);
  if (mixed &&
      (!options.use_mixed_fast_path || options.use_full_formulation)) {
    return solve_convex_generic(graph, prices, cycle, options, ctx);
  }

  auto original_hops = make_hop_data(graph, prices, cycle);
  if (!original_hops) return original_hops.error();
  const std::size_t n = original_hops->size();
  // Tick-crossing fallback: a concentrated hop pinned at (or numerically
  // past) its range edge in the trade direction admits no input, so the
  // cap constraint has no strict interior; the generic solver's clamped
  // quotes handle the flat region instead.
  if (mixed) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!((*original_hops)[i].input_cap > 0.0)) {
        return solve_convex_generic(graph, prices, cycle, options, ctx);
      }
    }
  }
  // The barrier transcription divides by reserves and takes logs of
  // prices; reject corrupted inputs here with a typed diagnostic instead
  // of letting NaN propagate into the Newton iteration. On mixed loops
  // this also catches degenerate kernel state (a stable osculating proxy
  // blowing up on a perfectly flat curve), which the derivative-free
  // generic solver tolerates — route there instead of erroring.
  for (std::size_t i = 0; i < n; ++i) {
    const LoopHopData& hop = (*original_hops)[i];
    if (!std::isfinite(hop.reserve_in) || !std::isfinite(hop.reserve_out) ||
        !std::isfinite(hop.price_in) || !std::isfinite(hop.price_out) ||
        !std::isfinite(hop.gamma) || !(hop.reserve_in > 0.0) ||
        !(hop.reserve_out > 0.0) || !(hop.price_in > 0.0) ||
        !(hop.price_out > 0.0) || !(hop.gamma > 0.0)) {
      if (mixed) {
        return solve_convex_generic(graph, prices, cycle, options, ctx);
      }
      return make_error(ErrorCode::kNumericFailure,
                        "non-finite or non-positive state on hop " +
                            std::to_string(i) + " of loop " +
                            cycle.rotation_key());
    }
  }

  // Last rung of the containment ladder (warm → cold barrier → generic →
  // typed error): the derivative-free generic solver needs no Hessian,
  // so it survives curvature that breaks the barrier's Newton centering.
  const auto rescue = [&](const Error& barrier_error)
      -> Result<ConvexSolution> {
    ctx.used_fallback = true;
    if (ctx.warm) ctx.warm->valid = false;
    auto rescued = solve_convex_generic(graph, prices, cycle, options, ctx);
    if (rescued) return rescued;
    return make_error(ErrorCode::kNumericFailure,
                      "convex solve failed on loop " + cycle.rotation_key() +
                          ": barrier: " + barrier_error.message +
                          "; generic fallback: " + rescued.error().message);
  };

  ConvexSolution solution;
  solution.outcome.kind = StrategyKind::kConvexOptimization;
  solution.outcome.start_token = cycle.tokens().front();
  solution.inputs.resize(n);
  solution.outputs.resize(n);

  // Analytic kernel: 2-pool all-CPMM loops under the reduced
  // transcription have a closed-form optimum — no normalization, no
  // iterations, zero gap. (Mixed length-2 loops stay on the barrier: the
  // active-set kernel's formulas are CPMM-exact only.)
  if (!mixed && !options.use_full_formulation &&
      options.use_closed_form_length2 && n == 2) {
    if (const auto closed = solve_length2_closed_form(*original_hops)) {
      ctx.used_closed_form = true;
      if (ctx.warm) ctx.warm->valid = false;  // nothing to warm-start
      for (std::size_t i = 0; i < 2; ++i) {
        solution.inputs[i] = closed->inputs[i];
        solution.outputs[i] = closed->outputs[i];
      }
      solution.duality_gap_usd = 0.0;
      fill_profits(*original_hops, solution.inputs, solution.outputs,
                   solution.outcome);
      return solution;
    }
  }

  const LoopNormalization norm = LoopNormalization::create(*original_hops);
  const auto hops = norm.normalize(*original_hops);

  optim::BarrierOptions barrier_options = options.barrier;

  if (options.use_full_formulation) {
    const FullLoopProblem problem(hops);
    auto start = full_interior_start(hops);
    if (!start) {
      // Profitable by price product but numerically interior-less:
      // the attainable profit is indistinguishable from zero.
      return zero_solution(cycle);
    }
    const optim::BarrierSolver solver(barrier_options);
    auto status = solver.solve_into(problem, *start, ctx.workspace, ctx.report);
    if (!status) return rescue(status.error());
    for (std::size_t i = 0; i < n; ++i) {
      solution.inputs[i] = std::max(0.0, ctx.report.x[i]);
      solution.outputs[i] = std::max(0.0, ctx.report.x[n + i]);
    }
  } else {
    const ReducedLoopProblem problem(hops);

    // Warm start: re-express the previous optimum (raw token units) in
    // this solve's normalization and push it strictly inside the
    // perturbed feasible set. The restart sharpness certifies a gap of
    // warm_restart_gap — matching the O(δ²) suboptimality the projected
    // iterate actually has after a δ-perturbation — so the barrier skips
    // most of the μ-climb without wedging the first centering against
    // the moved boundary. The interior margin tracks 1/t₀ (central-path
    // slack at the restart sharpness).
    bool warm_used = false;
    math::Vector& start_point = ctx.workspace.candidate;
    if (ctx.warm && ctx.warm->valid && ctx.warm->x.size() == n) {
      const double restart_t = std::max(
          options.barrier.initial_t,
          std::min(static_cast<double>(problem.num_inequalities()) /
                       options.warm_restart_gap,
                   ctx.warm->t / options.barrier.mu));
      const double margin = std::clamp(1.0 / restart_t, 1e-9, 1e-3);
      start_point.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        start_point[i] = ctx.warm->x[i] / norm.token_unit[i];
      }
      if (project_interior(hops, start_point, margin) &&
          problem.strictly_feasible(start_point)) {
        warm_used = true;
        barrier_options.initial_t = restart_t;
        barrier_options.gap_tolerance = std::max(
            options.barrier.gap_tolerance, options.warm_gap_tolerance);
        barrier_options.mu = std::max(options.barrier.mu, options.warm_mu);
      }
    }
    if (!warm_used) {
      auto start = reduced_interior_start(hops);
      if (start) {
        start_point = *start;
      } else {
        // Analytic interior construction failed although the price
        // product says an interior exists — let phase-I search for one
        // before declaring the loop profitless.
        optim::Phase1Options phase1;
        phase1.barrier = options.barrier;
        auto found = optim::find_strictly_feasible(
            problem, math::Vector(n, 0.0), phase1, ctx.workspace);
        if (!found || !problem.strictly_feasible(*found)) {
          if (ctx.warm) ctx.warm->valid = false;
          return zero_solution(cycle);
        }
        start_point = *found;
      }
    }

    const optim::BarrierSolver solver(barrier_options);
    auto status =
        solver.solve_into(problem, start_point, ctx.workspace, ctx.report);
    if (warm_used && (!status || !ctx.report.centerings_converged)) {
      // The projected warm iterate can sit close enough to the perturbed
      // boundary that centering breaks down — either as a hard numeric
      // failure or as inner Newton stalls that silently invalidate the
      // m/t certificate. Both cases retry cold.
      warm_used = false;
      auto start = reduced_interior_start(hops);
      if (!start) {
        if (ctx.warm) ctx.warm->valid = false;
        return zero_solution(cycle);
      }
      barrier_options.initial_t = options.barrier.initial_t;
      barrier_options.gap_tolerance = options.barrier.gap_tolerance;
      barrier_options.mu = options.barrier.mu;
      const optim::BarrierSolver cold_solver(barrier_options);
      status = cold_solver.solve_into(problem, *start, ctx.workspace,
                                      ctx.report);
    }
    if (!status) return rescue(status.error());
    ctx.warm_hit = warm_used;

    for (std::size_t i = 0; i < n; ++i) {
      solution.inputs[i] = std::max(0.0, ctx.report.x[i]);
      solution.outputs[i] = hops[i].swap(solution.inputs[i]);
    }

    // Refresh the warm slot with this solve's terminal state, in raw
    // token units so the cache survives the next re-normalization.
    if (ctx.warm) {
      ctx.warm->x.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        ctx.warm->x[i] = ctx.report.x[i] * norm.token_unit[i];
      }
      ctx.warm->t = ctx.report.final_t;
      ctx.warm->valid = true;
    }
  }
  solution.duality_gap_usd = ctx.report.duality_gap;
  solution.outcome.solver_iterations = ctx.report.total_newton_iterations;

  // Back to the caller's token units and USD.
  for (std::size_t i = 0; i < n; ++i) {
    solution.inputs[i] *= norm.token_unit[i];
    solution.outputs[i] *= norm.token_unit[(i + 1) % n];
  }
  solution.duality_gap_usd *= norm.price_scale;

  // Plan honesty on mixed hops: the kernel output (fixed-D closed form /
  // virtual-reserve form) can differ from the pool's own quote by the
  // quote Newton's convergence slack, which plan_from_convex would
  // reject as an invariant violation on small outputs. Re-quote each
  // non-CPMM hop at the solved input so the reported outputs are exactly
  // what execution attains.
  if (mixed) {
    for (std::size_t i = 0; i < n; ++i) {
      const LoopHopData& hop = (*original_hops)[i];
      if (hop.kind == HopKind::kCpmm) continue;
      solution.outputs[i] = graph.pool(hop.pool)
                                .quote(hop.token_in, solution.inputs[i])
                                .amount_out;
    }
  }

  fill_profits(*original_hops, solution.inputs, solution.outputs,
               solution.outcome);
  ARB_LOG_DEBUG("convex solve: profit $" << solution.outcome.monetized_usd
                                         << " gap $"
                                         << solution.duality_gap_usd);
  return solution;
}

Result<ConvexSolution> solve_convex(const graph::TokenGraph& graph,
                                    const market::CexPriceFeed& prices,
                                    const graph::Cycle& cycle,
                                    const ConvexOptions& options) {
  ConvexContext ctx;
  return solve_convex(graph, prices, cycle, options, ctx);
}

Result<StrategyOutcome> evaluate_convex(const graph::TokenGraph& graph,
                                        const market::CexPriceFeed& prices,
                                        const graph::Cycle& cycle,
                                        const ConvexOptions& options) {
  auto solution = solve_convex(graph, prices, cycle, options);
  if (!solution) return solution.error();
  return solution->outcome;
}

}  // namespace arb::core
