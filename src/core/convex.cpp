#include "core/convex.hpp"

#include <cmath>

#include "amm/path.hpp"
#include "common/logging.hpp"

namespace arb::core {
namespace {

/// Zero-profit solution (the Section IV theorem case).
ConvexSolution zero_solution(const graph::Cycle& cycle) {
  ConvexSolution solution;
  solution.outcome.kind = StrategyKind::kConvexOptimization;
  solution.outcome.start_token = cycle.tokens().front();
  for (const TokenId token : cycle.tokens()) {
    solution.outcome.profits.push_back(TokenProfit{token, 0.0});
  }
  solution.inputs.assign(cycle.length(), 0.0);
  solution.outputs.assign(cycle.length(), 0.0);
  return solution;
}

/// Collects per-token profits and the monetized total from per-hop
/// (input, output) amounts. Token t_j retains out_{j-1} − in_j.
void fill_profits(const std::vector<LoopHopData>& hops,
                  const std::vector<double>& inputs,
                  const std::vector<double>& outputs,
                  StrategyOutcome& outcome) {
  const std::size_t n = hops.size();
  outcome.profits.clear();
  outcome.monetized_usd = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t prev = (j + n - 1) % n;
    const double retained = outputs[prev] - inputs[j];
    outcome.profits.push_back(TokenProfit{hops[j].token_in, retained});
    outcome.monetized_usd += hops[j].price_in * retained;
  }
}

/// Normalization making the barrier solve scale-invariant. Changing the
/// unit of token t_i by u_i (amounts ÷ u_i, prices × u_i) is an exact
/// symmetry of the problem; choosing u_i = x_i (each hop's input-side
/// reserve) plus a common price rescale brings every quantity to O(1)
/// regardless of whether reserves are 1e-3 or 1e9. The tolerances of the
/// interior-point method then mean the same thing at every market scale.
struct LoopNormalization {
  std::vector<double> token_unit;  ///< u_i for token t_i (hop i's input)
  double price_scale = 1.0;

  static LoopNormalization create(const std::vector<LoopHopData>& hops) {
    const std::size_t n = hops.size();
    LoopNormalization norm;
    norm.token_unit.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      norm.token_unit[i] = hops[i].reserve_in;
    }
    // Scale prices by the loop's MaxMax optimum (closed form per
    // rotation), so the normalized optimal profit is ~1 and the solver's
    // duality gap means *relative* accuracy independent of how fat the
    // loop is. Using the best rotation matters: anchoring on a rotation
    // whose start token is nearly worthless would poison the scale.
    double profit_usd = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      amm::MobiusCoefficients m = amm::MobiusCoefficients::identity();
      for (std::size_t i = 0; i < n; ++i) {
        const LoopHopData& hop = hops[(r + i) % n];
        m = m.then_hop(hop.reserve_in, hop.reserve_out, hop.gamma);
      }
      const double input = m.optimal_input();
      profit_usd = std::max(
          profit_usd, hops[r].price_in * (m.evaluate(input) - input));
    }
    if (profit_usd > 0.0 && std::isfinite(profit_usd)) {
      norm.price_scale = profit_usd;
    } else {
      double max_price = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        max_price =
            std::max(max_price, hops[i].price_in * norm.token_unit[i]);
      }
      norm.price_scale = max_price > 0.0 ? max_price : 1.0;
    }
    return norm;
  }

  [[nodiscard]] std::vector<LoopHopData> normalize(
      const std::vector<LoopHopData>& hops) const {
    const std::size_t n = hops.size();
    std::vector<LoopHopData> out = hops;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t next = (i + 1) % n;
      out[i].reserve_in = hops[i].reserve_in / token_unit[i];
      out[i].reserve_out = hops[i].reserve_out / token_unit[next];
      out[i].price_in = hops[i].price_in * token_unit[i] / price_scale;
      out[i].price_out = hops[i].price_out * token_unit[next] / price_scale;
    }
    return out;
  }
};

}  // namespace

Result<ConvexSolution> solve_convex(const graph::TokenGraph& graph,
                                    const market::CexPriceFeed& prices,
                                    const graph::Cycle& cycle,
                                    const ConvexOptions& options) {
  // Theorem (Section IV): no arbitrage under MaxMax ⇒ none under Convex.
  // Detect via the loop price product and skip the solver outright.
  if (cycle.price_product(graph) <= 1.0 + options.no_arbitrage_margin) {
    return zero_solution(cycle);
  }

  auto original_hops = make_hop_data(graph, prices, cycle);
  if (!original_hops) return original_hops.error();
  const LoopNormalization norm = LoopNormalization::create(*original_hops);
  const auto normalized = norm.normalize(*original_hops);
  const Result<std::vector<LoopHopData>> hops = normalized;
  const std::size_t n = hops->size();

  const optim::BarrierSolver solver(options.barrier);
  ConvexSolution solution;
  solution.outcome.kind = StrategyKind::kConvexOptimization;
  solution.outcome.start_token = cycle.tokens().front();
  solution.inputs.resize(n);
  solution.outputs.resize(n);

  if (options.use_full_formulation) {
    const FullLoopProblem problem(*hops);
    auto start = full_interior_start(*hops);
    if (!start) {
      // Profitable by price product but numerically interior-less:
      // the attainable profit is indistinguishable from zero.
      return zero_solution(cycle);
    }
    auto report = solver.solve(problem, *start);
    if (!report) return report.error();
    for (std::size_t i = 0; i < n; ++i) {
      solution.inputs[i] = std::max(0.0, report->x[i]);
      solution.outputs[i] = std::max(0.0, report->x[n + i]);
    }
    solution.duality_gap_usd = report->duality_gap;
    solution.outcome.solver_iterations = report->total_newton_iterations;
  } else {
    const ReducedLoopProblem problem(*hops);
    auto start = reduced_interior_start(*hops);
    if (!start) {
      return zero_solution(cycle);
    }
    auto report = solver.solve(problem, *start);
    if (!report) return report.error();
    for (std::size_t i = 0; i < n; ++i) {
      solution.inputs[i] = std::max(0.0, report->x[i]);
      solution.outputs[i] = (*hops)[i].swap(solution.inputs[i]);
    }
    solution.duality_gap_usd = report->duality_gap;
    solution.outcome.solver_iterations = report->total_newton_iterations;
  }

  // Back to the caller's token units and USD.
  for (std::size_t i = 0; i < n; ++i) {
    solution.inputs[i] *= norm.token_unit[i];
    solution.outputs[i] *= norm.token_unit[(i + 1) % n];
  }
  solution.duality_gap_usd *= norm.price_scale;

  fill_profits(*original_hops, solution.inputs, solution.outputs,
               solution.outcome);
  ARB_LOG_DEBUG("convex solve: profit $" << solution.outcome.monetized_usd
                                         << " gap $"
                                         << solution.duality_gap_usd);
  return solution;
}

Result<StrategyOutcome> evaluate_convex(const graph::TokenGraph& graph,
                                        const market::CexPriceFeed& prices,
                                        const graph::Cycle& cycle,
                                        const ConvexOptions& options) {
  auto solution = solve_convex(graph, prices, cycle, options);
  if (!solution) return solution.error();
  return solution->outcome;
}

}  // namespace arb::core
