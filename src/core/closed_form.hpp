#pragma once

/// \file closed_form.hpp
/// Analytic optimum for length-2 constant-product loops, bypassing the
/// iterative barrier solver.
///
/// For n = 2 the reduced transcription (loop_nlp.hpp) is
///
///   maximize  Σ_i [P_{i+1}·F_i(d_i) − P_i·d_i]
///   s.t.      d_1 ≤ F_0(d_0),  d_0 ≤ F_1(d_1),  d_i ≥ 0,
///
/// a concave program over a compact set whose optimum admits active-set
/// enumeration over the two flow constraints:
///
///  A. Neither flow constraint active — the objective separates per hop,
///     so d_i is the unconstrained maximizer of P_{i+1}·F_i(d) − P_i·d,
///       d_i* = (√(γ·x·y·P_out/P_in) − x)/γ, clamped at 0
///     (the d ≥ 0 bounds fold into the clamp). Valid iff the pair
///     satisfies both flow constraints.
///  B. d_1 = F_0(d_0) active — profit telescopes to P_0·(F_1(F_0(d_0)) −
///     d_0): the traditional single-start trade from token 0, solved by
///     the Möbius closed form (amm/path.hpp).
///  C. d_0 = F_1(d_1) active — the single-start trade from token 1.
///  D. Both active ⇒ the telescoped profit is identically 0, dominated by
///     the zero trade.
///
/// Every candidate is feasible by construction, and by concavity the
/// argmax over {A if feasible, B, C, 0} is the global optimum. Tests
/// validate agreement with the barrier solver to ≤ 1e-9 relative.

#include <optional>
#include <vector>

#include "core/loop_nlp.hpp"

namespace arb::core {

/// Unconstrained maximizer of  hop.price_out·F(d) − hop.price_in·d  over
/// d ≥ 0 (candidate A's per-hop optimum). Returns 0 when the hop's
/// marginal rate at zero already loses money.
[[nodiscard]] double optimal_single_hop_input(const LoopHopData& hop);

/// Closed-form solution of the length-2 reduced program.
struct ClosedFormSolution {
  double inputs[2] = {0.0, 0.0};   ///< optimal d_0, d_1
  double outputs[2] = {0.0, 0.0};  ///< F_0(d_0), F_1(d_1)
  double profit_usd = 0.0;         ///< monetized profit at the optimum
};

/// Solves the length-2 loop analytically. Returns nullopt when the loop
/// is not length 2 or a hop's data is degenerate (non-positive reserves,
/// gamma, or prices), in which case the caller falls back to the barrier
/// solver.
[[nodiscard]] std::optional<ClosedFormSolution> solve_length2_closed_form(
    const std::vector<LoopHopData>& hops);

}  // namespace arb::core
