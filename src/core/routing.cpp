#include "core/routing.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "amm/any_pool.hpp"
#include "amm/generic_path.hpp"
#include "common/error.hpp"
#include "core/flow_nlp.hpp"
#include "math/scalar_solve.hpp"

namespace arb::core {
namespace {

Status validate_paths(const std::vector<amm::PoolPath>& paths) {
  if (paths.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "no paths to route over");
  }
  const TokenId start = paths.front().start_token();
  const TokenId end = paths.front().end_token();
  for (const amm::PoolPath& path : paths) {
    if (path.start_token() != start || path.end_token() != end) {
      return make_error(ErrorCode::kInvalidArgument,
                        "paths must share start and end tokens");
    }
  }
  return Status::success();
}

/// Input on one path at common marginal rate lambda.
double input_at_rate(const amm::MobiusCoefficients& m, double lambda) {
  // a·b/(b + c·d)² = λ → d = (√(a·b/λ) − b)/c, clamped at 0 when the
  // path's zero-size rate a/b is already below λ.
  if (m.rate_at_zero() <= lambda) return 0.0;
  return (std::sqrt(m.a * m.b / lambda) - m.b) / m.c;
}

/// The water-filling core: λ-bisection over composed Möbius maps. Both
/// optimal_route_split overloads funnel their all-CPMM case here.
Result<RouteSplit> water_filling_split(
    const std::vector<amm::MobiusCoefficients>& maps, double budget,
    double tolerance) {
  double best_zero_rate = 0.0;
  for (const auto& m : maps) {
    best_zero_rate = std::max(best_zero_rate, m.rate_at_zero());
  }

  RouteSplit split;
  split.inputs.assign(maps.size(), 0.0);
  split.outputs.assign(maps.size(), 0.0);
  if (budget == 0.0) {
    split.marginal_rate = best_zero_rate;
    return split;
  }

  // Σ_p d_p(λ) is continuous and strictly decreasing on (0, best_rate],
  // from +∞ to 0; bisect for the λ matching the budget. The halving
  // search maintains total(hi) < budget ≤ total(lo), so the bracket is
  // [λ, 2λ] and a tolerance *relative to lo* resolves λ to the same
  // relative precision at every budget scale (the old absolute-on-λ
  // criterion stalled at the iteration cap for large budgets, where λ*
  // is many orders below the zero-size rate).
  const auto total_input_minus_budget = [&](double lambda) {
    double total = 0.0;
    for (const auto& m : maps) total += input_at_rate(m, lambda);
    return total - budget;
  };
  double hi = best_zero_rate;
  double lo = 0.5 * hi;
  while (total_input_minus_budget(lo) < 0.0) {
    hi = lo;
    lo *= 0.5;
    if (lo < 1e-300) {
      return make_error(ErrorCode::kNumericFailure,
                        "route split bisection underflow");
    }
  }
  math::ScalarSolveOptions options;
  options.x_tolerance = tolerance * lo;
  auto root = math::bisect_root(total_input_minus_budget, lo, hi, options);
  if (!root) return root.error();

  split.marginal_rate = root->x;
  split.iterations = root->iterations;
  double allocated = 0.0;
  for (std::size_t p = 0; p < maps.size(); ++p) {
    split.inputs[p] = input_at_rate(maps[p], split.marginal_rate);
    allocated += split.inputs[p];
  }
  // Bisection leaves a residual vs the exact budget; scale it away so
  // the split spends exactly the budget (scaling is feasible and the
  // objective is insensitive at first order).
  if (allocated > 0.0) {
    const double scale = budget / allocated;
    for (double& d : split.inputs) d *= scale;
  }
  for (std::size_t p = 0; p < maps.size(); ++p) {
    split.outputs[p] = maps[p].evaluate(split.inputs[p]);
    split.total_output += split.outputs[p];
  }
  return split;
}

}  // namespace

Result<RouteSplit> optimal_route_split(const std::vector<amm::PoolPath>& paths,
                                       double budget, double tolerance) {
  if (auto valid = validate_paths(paths); !valid.ok()) return valid.error();
  if (budget < 0.0) {
    return make_error(ErrorCode::kInvalidArgument, "negative budget");
  }
  std::vector<amm::MobiusCoefficients> maps;
  maps.reserve(paths.size());
  for (const amm::PoolPath& path : paths) maps.push_back(path.compose());
  return water_filling_split(maps, budget, tolerance);
}

Result<RouteSplit> optimal_route_split(
    const graph::TokenGraph& graph, TokenId token_in, TokenId token_out,
    const std::vector<std::vector<PoolId>>& paths, double budget,
    FlowContext& ctx, double tolerance) {
  // for_swap validates topology (continuity, endpoints, simple paths)
  // and dedups shared (pool, direction) edges.
  auto instance =
      FlowInstance::for_swap(graph, token_in, token_out, paths, budget);
  if (!instance) return instance.error();

  bool mixed = false;
  for (const LoopHopData& edge : instance->edges) {
    mixed |= edge.kind != HopKind::kCpmm;
  }
  // Water-filling treats paths as independent: valid only when no two
  // paths draw on the same edge.
  std::unordered_set<std::size_t> used;
  bool disjoint = true;
  for (const auto& chain : instance->support) {
    for (std::size_t e : chain) disjoint &= used.insert(e).second;
  }

  if (!mixed && disjoint) {
    std::vector<amm::MobiusCoefficients> maps;
    maps.reserve(instance->support.size());
    for (const auto& chain : instance->support) {
      amm::MobiusCoefficients m = amm::MobiusCoefficients::identity();
      for (std::size_t e : chain) {
        const LoopHopData& hop = instance->edges[e];
        m = m.then_hop(hop.reserve_in, hop.reserve_out, hop.gamma);
      }
      maps.push_back(m);
    }
    return water_filling_split(maps, budget, tolerance);
  }

  FlowOptions options;
  auto solution = solve_flow(*instance, options, ctx);
  if (!solution) return solution.error();
  const PathAttribution attribution = attribute_support(*instance, *solution);

  RouteSplit split;
  split.inputs = attribution.inputs;
  split.outputs = attribution.outputs;
  split.total_output = solution->objective;
  split.iterations = solution->iterations;
  split.used_flow_solver = true;
  split.duality_gap = solution->duality_gap;
  // Marginal rate: the best chain-marginal product at the solved flows
  // (at the optimum every funded chain attains it, mirroring the
  // water-filling λ).
  for (const auto& chain : instance->support) {
    double rate = 1.0;
    for (std::size_t e : chain) {
      rate *= instance->edges[e].swap_deriv(solution->edge_inputs[e]);
    }
    split.marginal_rate = std::max(split.marginal_rate, rate);
  }
  return split;
}

Result<RouteSplit> optimal_route_split(
    const graph::TokenGraph& graph, TokenId token_in, TokenId token_out,
    const std::vector<std::vector<PoolId>>& paths, double budget,
    double tolerance) {
  FlowContext ctx;
  return optimal_route_split(graph, token_in, token_out, paths, budget, ctx,
                             tolerance);
}

Result<double> best_single_path_output(const std::vector<amm::PoolPath>& paths,
                                       double budget) {
  if (auto valid = validate_paths(paths); !valid.ok()) return valid.error();
  if (budget < 0.0) {
    return make_error(ErrorCode::kInvalidArgument, "negative budget");
  }
  double best = 0.0;
  for (const amm::PoolPath& path : paths) {
    best = std::max(best, path.compose().evaluate(budget));
  }
  return best;
}

Result<double> best_single_path_output(
    const graph::TokenGraph& graph, TokenId token_in, TokenId token_out,
    const std::vector<std::vector<PoolId>>& paths, double budget) {
  // Reuse for_swap purely as the path validator.
  auto instance =
      FlowInstance::for_swap(graph, token_in, token_out, paths, budget);
  if (!instance) return instance.error();
  double best = 0.0;
  for (const std::vector<PoolId>& path : paths) {
    double amount = budget;
    TokenId cur = token_in;
    for (PoolId id : path) {
      const amm::AnyPool& pool = graph.pool(id);
      amount = pool.quote(cur, amount).amount_out;
      cur = pool.other(cur);
    }
    best = std::max(best, amount);
  }
  return best;
}

}  // namespace arb::core
