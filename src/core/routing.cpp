#include "core/routing.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "math/scalar_solve.hpp"

namespace arb::core {
namespace {

Status validate_paths(const std::vector<amm::PoolPath>& paths) {
  if (paths.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "no paths to route over");
  }
  const TokenId start = paths.front().start_token();
  const TokenId end = paths.front().end_token();
  for (const amm::PoolPath& path : paths) {
    if (path.start_token() != start || path.end_token() != end) {
      return make_error(ErrorCode::kInvalidArgument,
                        "paths must share start and end tokens");
    }
  }
  return Status::success();
}

/// Input on one path at common marginal rate lambda.
double input_at_rate(const amm::MobiusCoefficients& m, double lambda) {
  // a·b/(b + c·d)² = λ → d = (√(a·b/λ) − b)/c, clamped at 0 when the
  // path's zero-size rate a/b is already below λ.
  if (m.rate_at_zero() <= lambda) return 0.0;
  return (std::sqrt(m.a * m.b / lambda) - m.b) / m.c;
}

}  // namespace

Result<RouteSplit> optimal_route_split(const std::vector<amm::PoolPath>& paths,
                                       double budget, double tolerance) {
  if (auto valid = validate_paths(paths); !valid.ok()) return valid.error();
  if (budget < 0.0) {
    return make_error(ErrorCode::kInvalidArgument, "negative budget");
  }

  std::vector<amm::MobiusCoefficients> maps;
  maps.reserve(paths.size());
  double best_zero_rate = 0.0;
  for (const amm::PoolPath& path : paths) {
    maps.push_back(path.compose());
    best_zero_rate = std::max(best_zero_rate, maps.back().rate_at_zero());
  }

  RouteSplit split;
  split.inputs.assign(paths.size(), 0.0);
  if (budget == 0.0) {
    split.marginal_rate = best_zero_rate;
    return split;
  }

  // Σ_p d_p(λ) is continuous and strictly decreasing on (0, best_rate],
  // from +∞ to 0; bisect for the λ matching the budget.
  const auto total_input_minus_budget = [&](double lambda) {
    double total = 0.0;
    for (const auto& m : maps) total += input_at_rate(m, lambda);
    return total - budget;
  };
  double lo = best_zero_rate;
  while (total_input_minus_budget(lo) < 0.0) {
    lo *= 0.5;
    if (lo < 1e-300) {
      return make_error(ErrorCode::kNumericFailure,
                        "route split bisection underflow");
    }
  }
  math::ScalarSolveOptions options;
  options.x_tolerance = tolerance * best_zero_rate;
  auto root = math::bisect_root(total_input_minus_budget, lo,
                                best_zero_rate, options);
  if (!root) return root.error();

  split.marginal_rate = root->x;
  split.iterations = root->iterations;
  double allocated = 0.0;
  for (std::size_t p = 0; p < maps.size(); ++p) {
    split.inputs[p] = input_at_rate(maps[p], split.marginal_rate);
    allocated += split.inputs[p];
  }
  // Bisection leaves a residual vs the exact budget; scale it away so
  // the split spends exactly the budget (scaling is feasible and the
  // objective is insensitive at first order).
  if (allocated > 0.0) {
    const double scale = budget / allocated;
    for (double& d : split.inputs) d *= scale;
  }
  for (std::size_t p = 0; p < maps.size(); ++p) {
    split.total_output += maps[p].evaluate(split.inputs[p]);
  }
  return split;
}

Result<double> best_single_path_output(const std::vector<amm::PoolPath>& paths,
                                       double budget) {
  if (auto valid = validate_paths(paths); !valid.ok()) return valid.error();
  if (budget < 0.0) {
    return make_error(ErrorCode::kInvalidArgument, "negative budget");
  }
  double best = 0.0;
  for (const amm::PoolPath& path : paths) {
    best = std::max(best, path.compose().evaluate(budget));
  }
  return best;
}

}  // namespace arb::core
