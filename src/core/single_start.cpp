#include "core/single_start.hpp"

#include <algorithm>
#include <cmath>

#include "amm/generic_path.hpp"
#include "amm/path.hpp"
#include "common/error.hpp"

namespace arb::core {

Result<StrategyOutcome> evaluate_traditional(
    const graph::TokenGraph& graph, const market::CexPriceFeed& prices,
    const graph::Cycle& cycle, std::size_t start_offset,
    const SingleStartOptions& options) {
  const std::size_t n = cycle.length();
  const TokenId start = cycle.tokens()[start_offset % n];
  auto price = prices.price(start);
  if (!price) return price.error();

  amm::OptimalTrade trade;
  if (cycle.all_cpmm(graph)) {
    // All-CPMM: the exact Möbius closed form / bisection, unchanged.
    const amm::PoolPath path = cycle.path(graph, start_offset % n);
    if (options.use_bisection) {
      auto solved = amm::optimize_input_bisection(path,
                                                  options.bisection_tolerance);
      if (!solved) return solved.error();
      trade = *solved;
    } else {
      trade = amm::optimize_input_analytic(path);
    }
  } else {
    // Mixed venues: derivative-free optimizer over black-box hops,
    // bracket search seeded at a fraction of the start-side depth.
    amm::GenericOptimizeOptions generic;
    generic.initial_scale = std::max(
        generic.initial_scale,
        1e-3 * graph.pool(cycle.pools()[start_offset % n]).reserve_of(start));
    auto solved = amm::optimize_input_generic(
        cycle.generic_path(graph, start_offset % n), generic);
    if (!solved) return solved.error();
    trade = *solved;
  }

  // Containment: corrupted reserves can drive the Möbius algebra or the
  // bracket search to NaN; surface a typed error instead of emitting an
  // Opportunity whose profit silently poisons the ranking.
  if (!std::isfinite(trade.input) || !std::isfinite(trade.output) ||
      !std::isfinite(trade.profit)) {
    return make_error(ErrorCode::kNumericFailure,
                      "non-finite optimal trade on loop " +
                          cycle.rotation_key());
  }

  StrategyOutcome outcome;
  outcome.kind = StrategyKind::kTraditional;
  outcome.start_token = start;
  outcome.input = trade.input;
  outcome.output = trade.output;
  outcome.profits = {TokenProfit{start, trade.profit}};
  outcome.monetized_usd = *price * trade.profit;
  outcome.solver_iterations = trade.iterations;
  return outcome;
}

Result<StrategyOutcome> evaluate_max_price(const graph::TokenGraph& graph,
                                           const market::CexPriceFeed& prices,
                                           const graph::Cycle& cycle,
                                           const SingleStartOptions& options) {
  std::size_t best_offset = 0;
  double best_price = -1.0;
  for (std::size_t i = 0; i < cycle.length(); ++i) {
    auto price = prices.price(cycle.tokens()[i]);
    if (!price) return price.error();
    if (*price > best_price) {
      best_price = *price;
      best_offset = i;
    }
  }
  auto outcome = evaluate_traditional(graph, prices, cycle, best_offset,
                                      options);
  if (!outcome) return outcome.error();
  outcome->kind = StrategyKind::kMaxPrice;
  return outcome;
}

Result<StrategyOutcome> evaluate_max_max(const graph::TokenGraph& graph,
                                         const market::CexPriceFeed& prices,
                                         const graph::Cycle& cycle,
                                         const SingleStartOptions& options) {
  auto rotations = evaluate_all_rotations(graph, prices, cycle, options);
  if (!rotations) return rotations.error();
  const StrategyOutcome* best = nullptr;
  for (const StrategyOutcome& candidate : *rotations) {
    if (best == nullptr || candidate.monetized_usd > best->monetized_usd) {
      best = &candidate;
    }
  }
  StrategyOutcome outcome = *best;
  outcome.kind = StrategyKind::kMaxMax;
  return outcome;
}

Result<std::vector<StrategyOutcome>> evaluate_all_rotations(
    const graph::TokenGraph& graph, const market::CexPriceFeed& prices,
    const graph::Cycle& cycle, const SingleStartOptions& options) {
  std::vector<StrategyOutcome> outcomes;
  outcomes.reserve(cycle.length());
  for (std::size_t offset = 0; offset < cycle.length(); ++offset) {
    auto outcome = evaluate_traditional(graph, prices, cycle, offset, options);
    if (!outcome) return outcome.error();
    outcomes.push_back(*std::move(outcome));
  }
  return outcomes;
}

}  // namespace arb::core
