#include "core/scanner.hpp"

#include <algorithm>
#include <numeric>
#include <string>

#include "common/error.hpp"
#include "core/convex.hpp"
#include "core/single_start.hpp"
#include "graph/cycle_enumeration.hpp"

namespace arb::core {

Result<std::optional<Opportunity>> evaluate_opportunity(
    const graph::TokenGraph& graph, const market::CexPriceFeed& prices,
    const graph::Cycle& loop, const ScannerConfig& config) {
  ConvexContext ctx;
  return evaluate_opportunity(graph, prices, loop, config, ctx);
}

Result<std::optional<Opportunity>> evaluate_opportunity(
    const graph::TokenGraph& graph, const market::CexPriceFeed& prices,
    const graph::Cycle& loop, const ScannerConfig& config,
    ConvexContext& ctx) {
  Opportunity opportunity(loop);

  if (config.strategy == StrategyKind::kConvexOptimization) {
    // Warm-starting is opt-in via the config flag; a caller-provided warm
    // slot is ignored (not cleared) when the flag is off.
    optim::WarmStart* warm = ctx.warm;
    if (!config.convex_warm_start) ctx.warm = nullptr;
    auto solution =
        solve_convex(graph, prices, loop, config.options.convex, ctx);
    ctx.warm = warm;
    if (!solution) return solution.error();
    opportunity.outcome = solution->outcome;
    auto plan = plan_from_convex(graph, loop, *solution);
    if (!plan) return plan.error();
    opportunity.plan = *std::move(plan);
  } else {
    Result<StrategyOutcome> outcome =
        config.strategy == StrategyKind::kMaxPrice
            ? evaluate_max_price(graph, prices, loop,
                                 config.options.single_start)
            : evaluate_max_max(graph, prices, loop,
                               config.options.single_start);
    if (!outcome) return outcome.error();
    opportunity.outcome = *std::move(outcome);
    auto plan = plan_from_single_start(graph, loop, opportunity.outcome);
    if (!plan) return plan.error();
    opportunity.plan = *std::move(plan);
  }

  opportunity.net_profit_usd = opportunity.outcome.monetized_usd;
  if (config.gas.has_value()) {
    opportunity.net_profit_usd =
        config.gas->net_profit_usd(opportunity.outcome, loop.length());
  }
  if (opportunity.net_profit_usd < config.min_net_profit_usd) {
    return std::optional<Opportunity>{};
  }

  auto diagnostics = analyze_loop(graph, prices, loop);
  if (!diagnostics) return diagnostics.error();
  opportunity.diagnostics = *std::move(diagnostics);
  return std::optional<Opportunity>{std::move(opportunity)};
}

bool opportunity_before(const Opportunity& a, const Opportunity& b) {
  if (a.net_profit_usd != b.net_profit_usd) {
    return a.net_profit_usd > b.net_profit_usd;
  }
  return a.cycle.rotation_key() < b.cycle.rotation_key();
}

void rank_opportunities(std::vector<Opportunity>& opportunities) {
  std::vector<std::string> keys;
  keys.reserve(opportunities.size());
  for (const Opportunity& op : opportunities) {
    keys.push_back(op.cycle.rotation_key());
  }
  std::vector<std::size_t> order(opportunities.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) {
              if (opportunities[i].net_profit_usd !=
                  opportunities[j].net_profit_usd) {
                return opportunities[i].net_profit_usd >
                       opportunities[j].net_profit_usd;
              }
              return keys[i] < keys[j];
            });
  std::vector<Opportunity> ranked;
  ranked.reserve(opportunities.size());
  for (const std::size_t i : order) {
    ranked.push_back(std::move(opportunities[i]));
  }
  opportunities = std::move(ranked);
}

Result<std::vector<Opportunity>> scan_market(
    const graph::TokenGraph& graph, const market::CexPriceFeed& prices,
    const ScannerConfig& config) {
  if (config.loop_lengths.empty()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "scanner needs at least one loop length");
  }
  std::vector<Opportunity> opportunities;
  for (const std::size_t length : config.loop_lengths) {
    if (length < 2) {
      return make_error(ErrorCode::kInvalidArgument,
                        "loop length must be at least 2");
    }
    const auto loops = graph::filter_arbitrage(
        graph, graph::enumerate_fixed_length_cycles(graph, length));
    for (const graph::Cycle& loop : loops) {
      auto opportunity = evaluate_opportunity(graph, prices, loop, config);
      if (!opportunity) return opportunity.error();
      if (opportunity->has_value()) {
        opportunities.push_back(*std::move(*opportunity));
      }
    }
  }
  rank_opportunities(opportunities);
  return opportunities;
}

}  // namespace arb::core
