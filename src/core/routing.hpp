#pragma once

/// \file routing.hpp
/// Optimal order splitting across parallel swap paths.
///
/// The paper's related work (Danos et al., "Global order routing on
/// exchange networks") treats routing as a convex program; for CPMM
/// paths the specific structure collapses to water-filling. Every path
/// composes to a Möbius map out_p(d) = a_p·d/(b_p + c_p·d) with marginal
/// rate a_p·b_p/(b_p + c_p·d)², strictly decreasing in d. At the optimum
/// of
///
///   maximize Σ_p out_p(d_p)   s.t.  Σ_p d_p = budget, d_p >= 0,
///
/// every funded path runs at a common marginal rate λ, and
/// d_p(λ) = (√(a_p·b_p/λ) − b_p)/c_p clamped at 0 — so the whole split
/// reduces to a 1-D bisection on λ. Exact, no NLP solver required (the
/// tests cross-check against the barrier solver anyway).

#include <vector>

#include "amm/path.hpp"
#include "common/result.hpp"

namespace arb::core {

struct RouteSplit {
  /// Input allocated to each path (same order as the input list).
  std::vector<double> inputs;
  /// Total output across paths.
  double total_output = 0.0;
  /// The common marginal rate λ at the optimum.
  double marginal_rate = 0.0;
  int iterations = 0;
};

/// Splits `budget` of the common start token across `paths` to maximize
/// the total output of the common end token.
/// Fails with kInvalidArgument unless all paths share start and end
/// tokens and budget >= 0; budget 0 yields the all-zero split.
[[nodiscard]] Result<RouteSplit> optimal_route_split(
    const std::vector<amm::PoolPath>& paths, double budget,
    double tolerance = 1e-12);

/// Output of the best *unsplit* route for the same budget (baseline the
/// ablation bench compares against).
[[nodiscard]] Result<double> best_single_path_output(
    const std::vector<amm::PoolPath>& paths, double budget);

}  // namespace arb::core
