#pragma once

/// \file routing.hpp
/// Optimal order splitting across parallel swap paths.
///
/// The paper's related work (Danos et al., "Global order routing on
/// exchange networks") treats routing as a convex program; for CPMM
/// paths the specific structure collapses to water-filling. Every path
/// composes to a Möbius map out_p(d) = a_p·d/(b_p + c_p·d) with marginal
/// rate a_p·b_p/(b_p + c_p·d)², strictly decreasing in d. At the optimum
/// of
///
///   maximize Σ_p out_p(d_p)   s.t.  Σ_p d_p = budget, d_p >= 0,
///
/// every funded path runs at a common marginal rate λ, and
/// d_p(λ) = (√(a_p·b_p/λ) − b_p)/c_p clamped at 0 — so the whole split
/// reduces to a 1-D bisection on λ. Exact, no NLP solver required (the
/// tests cross-check against the barrier solver anyway).
///
/// The graph overloads generalize the same interface to mixed-venue and
/// pool-sharing path sets: all-CPMM edge-disjoint inputs keep the
/// water-filling special case, everything else delegates to the
/// flow-form barrier program (core/flow_nlp.hpp).

#include <vector>

#include "amm/path.hpp"
#include "common/result.hpp"
#include "common/types.hpp"
#include "core/flow_nlp.hpp"
#include "graph/token_graph.hpp"

namespace arb::core {

struct RouteSplit {
  /// Input allocated to each path (same order as the input list).
  std::vector<double> inputs;
  /// Output delivered by each path (same order).
  std::vector<double> outputs;
  /// Total output across paths.
  double total_output = 0.0;
  /// The common marginal rate λ at the optimum (for the flow route: the
  /// best chain-marginal product at the solved flows).
  double marginal_rate = 0.0;
  int iterations = 0;
  /// The split came from the flow-form barrier solve rather than the
  /// water-filling closed form.
  bool used_flow_solver = false;
  /// Barrier m/t certificate (0 for the water-filling route).
  double duality_gap = 0.0;
};

/// Splits `budget` of the common start token across `paths` to maximize
/// the total output of the common end token. CPMM-only (PoolPath is
/// Möbius); the graph overload below accepts any venue mix.
/// Fails with kInvalidArgument unless all paths share start and end
/// tokens and budget >= 0; budget 0 yields the all-zero split.
/// `tolerance` is *relative*: λ is bisected to tolerance·λ (the bracket
/// from the halving search is [λ, 2λ], so convergence is budget-scale
/// invariant).
[[nodiscard]] Result<RouteSplit> optimal_route_split(
    const std::vector<amm::PoolPath>& paths, double budget,
    double tolerance = 1e-12);

/// Mixed-venue split: paths given as pool-id sequences token_in →
/// token_out over the graph. All-CPMM, edge-disjoint path sets reduce to
/// the same water-filling bisection as the PoolPath overload; any
/// StableSwap/concentrated hop — or paths sharing a (pool, direction)
/// edge — routes through the flow-form barrier program, with per-path
/// amounts recovered by support attribution.
[[nodiscard]] Result<RouteSplit> optimal_route_split(
    const graph::TokenGraph& graph, TokenId token_in, TokenId token_out,
    const std::vector<std::vector<PoolId>>& paths, double budget,
    FlowContext& ctx, double tolerance = 1e-12);

/// Convenience overload with a fresh flow context.
[[nodiscard]] Result<RouteSplit> optimal_route_split(
    const graph::TokenGraph& graph, TokenId token_in, TokenId token_out,
    const std::vector<std::vector<PoolId>>& paths, double budget,
    double tolerance = 1e-12);

/// Output of the best *unsplit* route for the same budget (baseline the
/// ablation bench compares against).
[[nodiscard]] Result<double> best_single_path_output(
    const std::vector<amm::PoolPath>& paths, double budget);

/// Mixed-venue overload of the unsplit baseline: evaluates each path
/// hop-by-hop through the pools' own quotes (any venue kind).
[[nodiscard]] Result<double> best_single_path_output(
    const graph::TokenGraph& graph, TokenId token_in, TokenId token_out,
    const std::vector<std::vector<PoolId>>& paths, double budget);

}  // namespace arb::core
