#pragma once

/// \file coordinate.hpp
/// Cyclic coordinate-ascent solver for the reduced loop program — a
/// barrier-free alternative used to cross-validate the interior-point
/// solver and as an ablation subject.
///
/// The reduced problem maximizes a separable-concave objective
/// Σ_i [P_{t_{i+1}}·F_i(d_i) − P_{t_i}·d_i] over the convex set
/// {d ≥ 0, d_{i+1} ≤ F_i(d_i)}. Holding all but one coordinate fixed,
/// the feasible range of d_i is the closed interval
/// [d_{i+1}-preimage bound, F_{i-1}(d_{i-1})], and the objective is
/// concave in d_i — so each sweep step is a 1-D concave maximization
/// (golden section) over an interval, and the sweep monotonically
/// improves a concave objective over a convex set.

#include <vector>

#include "common/result.hpp"
#include "core/loop_nlp.hpp"

namespace arb::core {

struct CoordinateOptions {
  int max_sweeps = 200;
  /// Stop when one full sweep improves the objective by less than this
  /// (absolute, USD).
  double improvement_tolerance = 1e-10;
  /// Golden-section tolerance per coordinate, relative to the interval.
  double line_tolerance = 1e-12;
};

struct CoordinateReport {
  std::vector<double> inputs;  ///< optimal d_i
  double profit_usd = 0.0;
  int sweeps = 0;
  bool converged = false;
};

/// Maximizes the reduced loop program by cyclic coordinate ascent,
/// starting from the (feasible) zero vector. Needs no interior point, so
/// it also handles profitless loops (returns all-zero).
[[nodiscard]] CoordinateReport solve_reduced_coordinate(
    const std::vector<LoopHopData>& hops, const CoordinateOptions& options = {});

}  // namespace arb::core
