#pragma once

/// \file loop_nlp.hpp
/// The two convex-program transcriptions of the paper's equation (8).
///
/// Notation: the loop rotation fixes hops i = 0..n−1; hop i swaps token
/// t_i into token t_{i+1 mod n} against reserves (x_i, y_i) with fee
/// multiplier γ_i, so its output is F_i(d) = γ_i·d·y_i / (x_i + γ_i·d).
/// P_i is the CEX price of t_i.
///
/// ReducedLoopProblem (n variables d_i = input of hop i):
///   The CPMM constraint of eq. (8) is active at any optimum (output is
///   monotone in it), so out_i = F_i(d_i) can be substituted. Profit
///   telescopes to Σ_i [P_{t_{i+1}}·F_i(d_i) − P_{t_i}·d_i]; constraints
///   d_i ≥ 0 and flow d_{i+1} ≤ F_i(d_i). Concave objective, convex
///   feasible set — n-dimensional.
///
/// FullLoopProblem (2n variables: in_i, out_i — the direct transcription):
///   maximize Σ_i P_{t_{i+1}}·(out_i − in_{i+1})
///   s.t. out_i ≤ F_i(in_i)        (the CPMM constraint of eq. (8),
///                                  rewritten in its convex form — the
///                                  bilinear (x+γ·in)(y−out) ≥ x·y defines
///                                  the same set),
///        in_{i+1} ≤ out_i, in_i ≥ 0.
///
/// Both are exposed so tests can verify they attain the same optimum.
/// Problems implement optim::NlpProblem in minimization form (f = −profit).

#include <cstdint>
#include <limits>
#include <vector>

#include "common/result.hpp"
#include "graph/cycle.hpp"
#include "graph/token_graph.hpp"
#include "market/price_feed.hpp"
#include "optim/problem.hpp"

namespace arb::core {

/// Which analytic hop kernel `LoopHopData::swap` evaluates.
enum class HopKind : std::uint8_t {
  kCpmm = 0,          ///< F(d) = γ·d·y / (x + γ·d) on real reserves
  kStable = 1,        ///< fixed-D StableSwap closed form (amm::StableCurve)
  kConcentrated = 2,  ///< CPMM form on *virtual* reserves, capped in range
};

/// Per-hop data shared by both transcriptions.
///
/// CPMM hops use the real reserves. Concentrated hops store the virtual
/// reserves (x_v = L/√P, y_v = L·√P oriented by trade direction), on
/// which the CPMM formula is *exactly* the in-range V3 swap function;
/// `input_cap` bounds the input to the range, and the barrier adds a
/// cap constraint so iterates never cross a tick. Stable hops evaluate
/// the fixed-D closed-form curve; their `reserve_in`/`reserve_out` hold
/// an *osculating CPMM proxy* (matching F'(0) and F''(0)) so the Möbius
/// chain machinery used for interior starts and warm-start projection
/// keeps working, while swap()/derivs use the exact kernel.
struct LoopHopData {
  double reserve_in = 0.0;   ///< x_i (virtual / proxy for non-CPMM)
  double reserve_out = 0.0;  ///< y_i (virtual / proxy for non-CPMM)
  double gamma = 0.0;        ///< 1 − fee
  double price_in = 0.0;     ///< P_{t_i}
  double price_out = 0.0;    ///< P_{t_{i+1}}
  TokenId token_in;
  TokenId token_out;
  PoolId pool;
  HopKind kind = HopKind::kCpmm;

  /// Stable kernel state (kind == kStable): invariant, Ann = 4A, and the
  /// raw-unit balances of the input/output sides at solve time.
  double stable_d = 0.0;
  double stable_ann = 0.0;
  double stable_x0 = 0.0;
  double stable_y0 = 0.0;

  /// Normalization units (raw tokens per normalized unit). The CPMM and
  /// concentrated kernels are scale-equivariant so normalization simply
  /// rescales their reserves; the stable curve is not, so its kernel
  /// evaluates in raw units and converts through these factors.
  double unit_in = 1.0;
  double unit_out = 1.0;

  /// Largest admissible input (normalized units). Finite only for
  /// concentrated hops, where it is the exact in-range input bound.
  double input_cap = std::numeric_limits<double>::infinity();

  [[nodiscard]] double swap(double d) const;         ///< F_i(d)
  [[nodiscard]] double swap_deriv(double d) const;   ///< F_i'(d)
  [[nodiscard]] double swap_deriv2(double d) const;  ///< F_i''(d) (< 0)
};

/// Builds the analytic kernel for one directed pool traversal (the
/// per-kind dispatch shared by the loop transcriptions and the flow-form
/// problem layer): CPMM real reserves / stable closed-form state +
/// osculating proxy / concentrated virtual reserves + tick cap. Prices
/// are left at zero — callers that monetize fill them in.
/// Precondition: the pool contains both tokens and they are its two
/// distinct sides.
[[nodiscard]] LoopHopData make_edge_kernel(const amm::AnyPool& pool,
                                           TokenId token_in,
                                           TokenId token_out);

/// Extracts per-hop data for a cycle rotation, dispatching on pool kind
/// (CPMM real reserves / stable closed-form state + proxy / concentrated
/// virtual reserves + cap). Fails with kNotFound when a CEX price is
/// missing.
[[nodiscard]] Result<std::vector<LoopHopData>> make_hop_data(
    const graph::TokenGraph& graph, const market::CexPriceFeed& prices,
    const graph::Cycle& cycle, std::size_t start_offset = 0);

class ReducedLoopProblem final : public optim::NlpProblem {
 public:
  explicit ReducedLoopProblem(std::vector<LoopHopData> hops);

  [[nodiscard]] std::size_t dimension() const override { return hops_.size(); }
  /// 2n base constraints (n × d_i ≥ 0, n × flow) plus one cap constraint
  /// per hop with a finite input_cap. All-CPMM loops have no caps, so
  /// their constraint layout — and hence the solver's arithmetic — is
  /// unchanged from the CPMM-only transcription.
  [[nodiscard]] std::size_t num_inequalities() const override {
    return 2 * hops_.size() + capped_.size();
  }
  [[nodiscard]] double objective(const math::Vector& d) const override;
  [[nodiscard]] math::Vector objective_gradient(
      const math::Vector& d) const override;
  [[nodiscard]] math::Matrix objective_hessian(
      const math::Vector& d) const override;
  [[nodiscard]] double constraint(std::size_t i,
                                  const math::Vector& d) const override;
  [[nodiscard]] math::Vector constraint_gradient(
      std::size_t i, const math::Vector& d) const override;
  [[nodiscard]] math::Matrix constraint_hessian(
      std::size_t i, const math::Vector& d) const override;

  // Allocation-free variants used by the solver fast path.
  void objective_gradient_into(const math::Vector& d,
                               math::Vector& grad) const override;
  void objective_hessian_into(const math::Vector& d,
                              math::Matrix& hess) const override;
  void constraint_gradient_into(std::size_t i, const math::Vector& d,
                                math::Vector& grad) const override;
  void constraint_hessian_into(std::size_t i, const math::Vector& d,
                               math::Matrix& hess) const override;

  [[nodiscard]] const std::vector<LoopHopData>& hops() const { return hops_; }

  /// Monetized profit (positive sign) at inputs d.
  [[nodiscard]] double profit_usd(const math::Vector& d) const {
    return -objective(d);
  }

 private:
  std::vector<LoopHopData> hops_;
  /// Hop indices with finite input_cap, in hop order; constraint
  /// 2n + j is d[capped_[j]] − cap ≤ 0.
  std::vector<std::size_t> capped_;
};

class FullLoopProblem final : public optim::NlpProblem {
 public:
  explicit FullLoopProblem(std::vector<LoopHopData> hops);

  /// Layout: z = (in_0..in_{n−1}, out_0..out_{n−1}).
  [[nodiscard]] std::size_t dimension() const override {
    return 2 * hops_.size();
  }
  /// Constraints: n × (in ≥ 0), n × (out ≤ F(in)), n × (in_{i+1} ≤ out_i).
  [[nodiscard]] std::size_t num_inequalities() const override {
    return 3 * hops_.size();
  }
  [[nodiscard]] double objective(const math::Vector& z) const override;
  [[nodiscard]] math::Vector objective_gradient(
      const math::Vector& z) const override;
  [[nodiscard]] math::Matrix objective_hessian(
      const math::Vector& z) const override;
  [[nodiscard]] double constraint(std::size_t i,
                                  const math::Vector& z) const override;
  [[nodiscard]] math::Vector constraint_gradient(
      std::size_t i, const math::Vector& z) const override;
  [[nodiscard]] math::Matrix constraint_hessian(
      std::size_t i, const math::Vector& z) const override;

  // Allocation-free variants used by the solver fast path.
  void objective_gradient_into(const math::Vector& z,
                               math::Vector& grad) const override;
  void objective_hessian_into(const math::Vector& z,
                              math::Matrix& hess) const override;
  void constraint_gradient_into(std::size_t i, const math::Vector& z,
                                math::Vector& grad) const override;
  void constraint_hessian_into(std::size_t i, const math::Vector& z,
                               math::Matrix& hess) const override;

  [[nodiscard]] const std::vector<LoopHopData>& hops() const { return hops_; }
  [[nodiscard]] double profit_usd(const math::Vector& z) const {
    return -objective(z);
  }

 private:
  std::vector<LoopHopData> hops_;
};

/// Builds a strictly feasible interior start for the reduced problem:
/// half the single-start optimum fed around the loop with a whisker of
/// retention at each hop. Fails with kInfeasible when the loop has no
/// interior (price product ≤ 1 ⇒ the only feasible point is 0).
[[nodiscard]] Result<math::Vector> reduced_interior_start(
    const std::vector<LoopHopData>& hops);

/// Lifts a reduced interior point to the full problem's variables:
/// out_i strictly between in_{i+1} and F_i(in_i).
[[nodiscard]] Result<math::Vector> full_interior_start(
    const std::vector<LoopHopData>& hops);

}  // namespace arb::core
