#include "core/gas.hpp"

#include "common/error.hpp"

namespace arb::core {

double GasModel::bundle_cost_usd(std::size_t swaps) const {
  ARB_REQUIRE(gas_per_swap >= 0.0 && overhead_gas >= 0.0 &&
                  gas_price_gwei >= 0.0 && eth_price_usd >= 0.0,
              "gas model parameters must be non-negative");
  const double gas =
      overhead_gas + gas_per_swap * static_cast<double>(swaps);
  return gas * gas_price_gwei * 1e-9 * eth_price_usd;
}

double GasModel::net_profit_usd(const StrategyOutcome& outcome,
                                std::size_t swaps) const {
  return outcome.monetized_usd - bundle_cost_usd(swaps);
}

bool GasModel::profitable_after_gas(const StrategyOutcome& outcome,
                                    std::size_t swaps) const {
  return net_profit_usd(outcome, swaps) > 0.0;
}

}  // namespace arb::core
