#pragma once

/// \file analysis.hpp
/// Per-loop diagnostics: how big an opportunity is relative to the pools
/// that carry it. Useful for ranking loops, for sizing flash loans, and
/// for understanding *why* the empirical Convex/MaxMax gap is tiny (thin
/// loops sit deep in the near-linear region of the swap curve, where
/// retaining profit mid-loop buys nothing).

#include "common/result.hpp"
#include "graph/cycle.hpp"
#include "graph/token_graph.hpp"
#include "market/price_feed.hpp"

namespace arb::core {

struct LoopDiagnostics {
  std::size_t length = 0;
  /// Π p_ij around the loop (> 1 ⇔ profitable orientation).
  double price_product = 0.0;
  /// Mispricing margin in log space: log(price_product).
  double log_margin = 0.0;
  /// Optimal single input (MaxMax rotation 0) in start-token units.
  double optimal_input = 0.0;
  /// Optimal input as a fraction of the first pool's input-side reserve —
  /// the "capacity utilization" of the opportunity.
  double input_to_reserve_ratio = 0.0;
  /// Gross profit of the best rotation, USD.
  double best_profit_usd = 0.0;
  /// Combined TVL of the loop's pools, USD.
  double loop_tvl_usd = 0.0;
  /// Profit per dollar of TVL (opportunity density).
  double profit_per_tvl = 0.0;
  /// Smallest pool TVL on the loop (the bottleneck).
  double bottleneck_tvl_usd = 0.0;
};

/// Computes diagnostics for one loop. Fails with kNotFound when a CEX
/// price is missing.
[[nodiscard]] Result<LoopDiagnostics> analyze_loop(
    const graph::TokenGraph& graph, const market::CexPriceFeed& prices,
    const graph::Cycle& cycle);

}  // namespace arb::core
