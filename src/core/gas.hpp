#pragma once

/// \file gas.hpp
/// Transaction-cost model for net (after-gas) monetized profit.
///
/// The paper's Section VII discusses practicality against Ethereum's
/// block cadence but monetizes gross profit. Real arbitrageurs pay
/// per-swap gas plus fixed bundle overhead, so thin loops flip from
/// profitable to unprofitable as gas prices rise — the ablation bench
/// quantifies how many of the paper's 123 loops survive.

#include <cstddef>

#include "core/outcome.hpp"

namespace arb::core {

struct GasModel {
  /// Gas per Uniswap V2 swap (~100–150k observed on mainnet).
  double gas_per_swap = 120'000.0;
  /// Fixed bundle overhead: base tx cost plus flash-loan bookkeeping.
  double overhead_gas = 80'000.0;
  /// Gas price in gwei (1e-9 ETH).
  double gas_price_gwei = 20.0;
  /// ETH price for converting gas to USD.
  double eth_price_usd = 1800.0;

  /// USD cost of a bundle with `swaps` swaps.
  [[nodiscard]] double bundle_cost_usd(std::size_t swaps) const;

  /// Gross USD profit minus bundle cost (may be negative).
  [[nodiscard]] double net_profit_usd(const StrategyOutcome& outcome,
                                      std::size_t swaps) const;

  /// True iff the outcome remains profitable after gas.
  [[nodiscard]] bool profitable_after_gas(const StrategyOutcome& outcome,
                                          std::size_t swaps) const;
};

}  // namespace arb::core
