#pragma once

/// \file study_io.hpp
/// Persists a MarketStudy (the Section VI experiment output) as CSV so
/// downstream analysis does not need to re-run the solvers: one row per
/// (loop, strategy) outcome plus a per-loop summary.

#include <string>

#include "common/result.hpp"
#include "core/comparison.hpp"

namespace arb::core {

/// Writes <path> with columns:
///   loop_id, loop, length, price_product, strategy, start_token,
///   input, monetized_usd
/// Traditional rows appear once per rotation; MaxPrice/MaxMax/Convex
/// once per loop.
[[nodiscard]] Status write_study_csv(const MarketStudy& study,
                                     const std::string& path);

/// Aggregates of one strategy column across the study.
struct StrategySummary {
  std::size_t loops = 0;
  double total_usd = 0.0;
  double max_usd = 0.0;
  /// Count of loops where this strategy is within `tolerance` of MaxMax.
  std::size_t matches_max_max = 0;
};

/// Per-strategy aggregates (used by examples and tested directly).
struct StudySummary {
  StrategySummary max_price;
  StrategySummary max_max;
  StrategySummary convex;
};

[[nodiscard]] StudySummary summarize_study(const MarketStudy& study,
                                           double tolerance = 1e-6);

}  // namespace arb::core
