#pragma once

/// \file outcome.hpp
/// Common result vocabulary for the four strategies the paper compares.

#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace arb::core {

/// The strategies of the paper, in increasing order of attainable profit:
/// Traditional <= MaxPrice <= MaxMax <= ConvexOptimization (the first
/// inequality holding only when MaxPrice's pick coincides; see Fig. 6).
enum class StrategyKind {
  kTraditional,         ///< fixed start token, optimize the single input
  kMaxPrice,            ///< traditional from the highest-CEX-price token
  kMaxMax,              ///< traditional from every token, take the max
  kConvexOptimization,  ///< eq. (8): relax flow equalities, solve convex NLP
};

[[nodiscard]] std::string_view to_string(StrategyKind kind);

/// Net amount of one token retained as profit.
struct TokenProfit {
  TokenId token;
  Amount amount = 0.0;
};

/// What a strategy run produced on one arbitrage loop.
struct StrategyOutcome {
  StrategyKind kind = StrategyKind::kTraditional;

  /// Start token (single-start strategies; for Convex this is the
  /// rotation anchor, profits may span several tokens).
  TokenId start_token;

  /// Input / output in start-token units (single-start strategies;
  /// zero-filled for Convex where per-hop amounts live in the plan).
  Amount input = 0.0;
  Amount output = 0.0;

  /// Net profit per token. Single-start: one entry (the start token).
  std::vector<TokenProfit> profits;

  /// Σ token profit · CEX price — the paper's monetized arbitrage profit.
  double monetized_usd = 0.0;

  /// Iterations spent by the numeric solver (0 for analytic solves).
  int solver_iterations = 0;
};

}  // namespace arb::core
