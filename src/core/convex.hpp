#pragma once

/// \file convex.hpp
/// The paper's Convex Optimization strategy (Section IV, eq. 8): relax
/// flow conservation to inequalities so profit may be retained in any
/// token of the loop, and solve the resulting convex program with the
/// barrier interior-point solver.

#include "common/result.hpp"
#include "core/loop_nlp.hpp"
#include "core/outcome.hpp"
#include "graph/cycle.hpp"
#include "graph/token_graph.hpp"
#include "market/price_feed.hpp"
#include "optim/barrier_solver.hpp"

namespace arb::core {

struct ConvexOptions {
  optim::BarrierOptions barrier;

  /// False (default): the n-variable reduced transcription (faster,
  /// numerically kinder). True: the 2n-variable direct transcription of
  /// eq. (8). Both reach the same optimum (tested).
  bool use_full_formulation = false;

  /// Loops whose price product is within this margin of 1 are declared
  /// profitless without invoking the solver (Section IV theorem: when
  /// MaxMax finds nothing, Convex finds nothing).
  double no_arbitrage_margin = 1e-12;
};

/// Solution detail beyond the common StrategyOutcome.
struct ConvexSolution {
  StrategyOutcome outcome;
  /// Optimal inputs per hop (d_i of the reduced transcription).
  std::vector<double> inputs;
  /// Optimal outputs per hop (F_i(d_i), or out_i for the full form).
  std::vector<double> outputs;
  /// Certified duality gap from the barrier solver (USD).
  double duality_gap_usd = 0.0;
};

/// Runs the Convex Optimization strategy on a loop. The rotation anchor
/// is tokens()[0]; the optimum is rotation-invariant (tested).
[[nodiscard]] Result<ConvexSolution> solve_convex(
    const graph::TokenGraph& graph, const market::CexPriceFeed& prices,
    const graph::Cycle& cycle, const ConvexOptions& options = {});

/// Convenience wrapper returning only the StrategyOutcome.
[[nodiscard]] Result<StrategyOutcome> evaluate_convex(
    const graph::TokenGraph& graph, const market::CexPriceFeed& prices,
    const graph::Cycle& cycle, const ConvexOptions& options = {});

}  // namespace arb::core
