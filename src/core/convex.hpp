#pragma once

/// \file convex.hpp
/// The paper's Convex Optimization strategy (Section IV, eq. 8): relax
/// flow conservation to inequalities so profit may be retained in any
/// token of the loop, and solve the resulting convex program with the
/// barrier interior-point solver.

#include "common/result.hpp"
#include "core/generic_convex.hpp"
#include "core/loop_nlp.hpp"
#include "core/outcome.hpp"
#include "graph/cycle.hpp"
#include "graph/token_graph.hpp"
#include "market/price_feed.hpp"
#include "optim/barrier_solver.hpp"
#include "optim/workspace.hpp"

namespace arb::core {

struct ConvexOptions {
  optim::BarrierOptions barrier;

  /// False (default): the n-variable reduced transcription (faster,
  /// numerically kinder). True: the 2n-variable direct transcription of
  /// eq. (8). Both reach the same optimum (tested).
  bool use_full_formulation = false;

  /// Length-2 loops under the reduced transcription are solved by the
  /// analytic active-set kernel (core/closed_form.hpp) instead of the
  /// barrier solver. Agrees with the barrier optimum to ≤1e-9 relative
  /// (tested); turn off to force the iterative path.
  bool use_closed_form_length2 = true;

  /// Loops whose price product is within this margin of 1 are declared
  /// profitless without invoking the solver (Section IV theorem: when
  /// MaxMax finds nothing, Convex finds nothing).
  double no_arbitrage_margin = 1e-12;

  /// Barrier sharpness for warm restarts, expressed as the duality gap
  /// (normalized profit units) the restart t certifies: t₀ = m / gap.
  /// After a reserve perturbation of relative size δ the old optimum is
  /// O(δ²) suboptimal, so resuming sharper than this wedges the first
  /// centering against the perturbed boundary (Newton crawls and the m/t
  /// certificate goes stale). 3e-2 absorbs reserve moves up to a few
  /// percent — including loops hugging the profitability boundary, whose
  /// projected restarts sit closest to the constraints and stall first —
  /// at the cost of roughly one extra μ-step versus a sharper resume; it
  /// is what holds the streaming warm-hit rate above 80%. The restart t
  /// is additionally capped at one μ-step below the previous terminal
  /// sharpness and floored at barrier.initial_t.
  double warm_restart_gap = 3e-2;

  /// Gap tolerance for warm-started solves (normalized units: relative
  /// to the loop's profit scale). The cold certificate chases
  /// barrier.gap_tolerance (1e-9); a warm resume stops its μ-climb at
  /// this looser — still economically irrelevant — gap, saving the last
  /// few outer iterations. Never tighter than barrier.gap_tolerance.
  double warm_gap_tolerance = 1e-6;

  /// Outer μ for warm resumes. A cold climb keeps μ moderate because an
  /// off-center iterate at freshly-raised t makes centerings expensive;
  /// a warm resume starts next to the optimum, so each centering lands
  /// in a few Newton steps even across 100x jumps in sharpness.
  double warm_mu = 1000.0;

  /// Mixed-venue loops (any Stable/Concentrated hop) run on the barrier
  /// interior-point solver through the analytic per-kind hop kernels
  /// (fixed-D stable closed form, virtual-reserve concentrated form with
  /// tick-cap constraints) — the same warm-start/workspace fast path as
  /// all-CPMM loops. False: route every mixed loop through the
  /// derivative-free generic solver, the pre-fast-path behavior. Either
  /// way the generic solver remains the containment/rescue rung, and
  /// all-CPMM loops are bit-identically unaffected by this flag.
  bool use_mixed_fast_path = true;

  /// Options for the derivative-free generic solver: the mixed-loop
  /// route when use_mixed_fast_path is off, the tick-crossing fallback
  /// for concentrated hops pinned at a range edge, and the rescue rung
  /// of the containment ladder. All-CPMM loops only read this on rescue.
  GenericConvexOptions generic;
};

/// Per-thread reusable solver state for solve_convex, plus the optional
/// warm-start hook. A context may be reused across cycles of any length;
/// buffers grow to the largest problem seen and then stay put, so a
/// steady-state barrier solve allocates nothing.
struct ConvexContext {
  optim::SolveWorkspace workspace;
  optim::BarrierReport report;

  /// Optional per-cycle warm-start slot owned by the caller (the
  /// streaming runtime keeps one per tracked cycle). When valid, the
  /// previous optimum — stored in RAW token units so it survives
  /// re-normalization — is projected back into the strict interior and
  /// the barrier restarts at a sharpness near the previous final t.
  /// On exit the slot is refreshed with this solve's terminal state.
  /// Null: always cold-start.
  optim::WarmStart* warm = nullptr;

  // Per-solve outputs (valid after solve_convex returns).
  bool warm_hit = false;          ///< warm iterate accepted this solve
  bool used_closed_form = false;  ///< length-2 kernel bypassed the solver
  bool used_generic = false;      ///< mixed loop went through generic_convex
  /// The barrier failed even from a cold start and the derivative-free
  /// generic solver rescued the solve — the last rung of the containment
  /// ladder (warm → cold barrier → generic → typed error). Feeds the
  /// runtime's solver_fallbacks metric.
  bool used_fallback = false;
};

/// Solution detail beyond the common StrategyOutcome.
struct ConvexSolution {
  StrategyOutcome outcome;
  /// Optimal inputs per hop (d_i of the reduced transcription).
  std::vector<double> inputs;
  /// Optimal outputs per hop (F_i(d_i), or out_i for the full form).
  std::vector<double> outputs;
  /// Certified duality gap from the barrier solver (USD).
  double duality_gap_usd = 0.0;
};

/// Runs the Convex Optimization strategy on a loop. The rotation anchor
/// is tokens()[0]; the optimum is rotation-invariant (tested).
///
/// Dispatch: all-CPMM loops use the barrier interior-point solver (with
/// the closed-form length-2 kernel and optional warm starts) on the
/// analytic transcription — the fast path, bit-identical to the
/// pre-heterogeneous scanner. Mixed loops (any StableSwap or
/// concentrated hop) take the same barrier path through analytic
/// per-kind hop kernels when use_mixed_fast_path is on (the default),
/// including warm starts; they fall back to the derivative-free generic
/// solver (core/generic_convex.hpp) when the flag is off, when the full
/// formulation is requested, when a concentrated hop is pinned at a
/// range edge (tick-crossing), or as the rescue rung after a barrier
/// failure. ctx.used_generic reports which path ran; warm slots are
/// invalidated whenever the generic path runs (its iterates don't map
/// back to the barrier's).
[[nodiscard]] Result<ConvexSolution> solve_convex(
    const graph::TokenGraph& graph, const market::CexPriceFeed& prices,
    const graph::Cycle& cycle, const ConvexOptions& options = {});

/// Context variant: identical numerics when ctx.warm is null (the
/// plain overload delegates here with a fresh context); with a valid
/// warm slot the solve may start from the previous optimum.
[[nodiscard]] Result<ConvexSolution> solve_convex(
    const graph::TokenGraph& graph, const market::CexPriceFeed& prices,
    const graph::Cycle& cycle, const ConvexOptions& options,
    ConvexContext& ctx);

/// Convenience wrapper returning only the StrategyOutcome.
[[nodiscard]] Result<StrategyOutcome> evaluate_convex(
    const graph::TokenGraph& graph, const market::CexPriceFeed& prices,
    const graph::Cycle& cycle, const ConvexOptions& options = {});

}  // namespace arb::core
