#include "core/coordinate.hpp"

#include <cmath>
#include <limits>

#include "amm/path.hpp"
#include "common/error.hpp"
#include "math/scalar_solve.hpp"

namespace arb::core {
namespace {

/// State of the re-parameterized problem: head input s = d_0 plus
/// forward fractions ρ_i ∈ [0,1] (share of hop i−1's output forwarded
/// into hop i; the rest is retained as profit in token t_i). In these
/// coordinates the flow constraints d_{i+1} ≤ F_i(d_i) become the box
/// ρ ∈ [0,1]^{n−1}, and only the wrap constraint F_{n−1}(d_{n−1}) ≥ s
/// still couples coordinates — exactly the structure cyclic coordinate
/// ascent handles without jamming.
struct Chain {
  const std::vector<LoopHopData>& hops;

  /// Hop inputs implied by (s, rho).
  [[nodiscard]] std::vector<double> inputs(double s,
                                           const std::vector<double>& rho) const {
    std::vector<double> d(hops.size());
    d[0] = s;
    for (std::size_t i = 1; i < hops.size(); ++i) {
      d[i] = rho[i - 1] * hops[i - 1].swap(d[i - 1]);
    }
    return d;
  }

  [[nodiscard]] double wrap_output(double s,
                                   const std::vector<double>& rho) const {
    const std::vector<double> d = inputs(s, rho);
    return hops.back().swap(d.back());
  }

  /// Monetized profit at (s, rho); requires wrap >= s for validity.
  [[nodiscard]] double profit(double s, const std::vector<double>& rho) const {
    const std::vector<double> d = inputs(s, rho);
    double usd = hops[0].price_in * (hops.back().swap(d.back()) - s);
    for (std::size_t i = 1; i < hops.size(); ++i) {
      usd += hops[i].price_in * (1.0 - rho[i - 1]) *
             hops[i - 1].swap(d[i - 1]);
    }
    return usd;
  }
};

/// Largest s with wrap(s) − s >= 0 (concave in s, zero at 0): bracket
/// rightwards from a known-feasible point, then bisect.
double max_feasible_head(const Chain& chain, const std::vector<double>& rho,
                         double current_s, double scale) {
  const auto slack = [&](double s) {
    return chain.wrap_output(s, rho) - s;
  };
  double lo = std::max(current_s, 1e-12 * scale);
  if (slack(lo) < 0.0) return current_s;  // already at the boundary
  double hi = std::max(lo * 2.0, 1e-9 * scale);
  int guard = 0;
  while (slack(hi) >= 0.0 && guard++ < 200) {
    lo = hi;
    hi *= 2.0;
    if (hi > scale * 1e9) return hi;  // unbounded in practice; cap
  }
  auto root = math::bisect_root(slack, lo, hi);
  return root.ok() ? root->x : lo;
}

/// Smallest feasible rho_i given the rest of the point (wrap increases
/// with every rho).
double min_feasible_rho(const Chain& chain, double s, std::vector<double> rho,
                        std::size_t index) {
  const double current = rho[index];  // read before the lambda mutates rho
  const auto slack = [&](double value) {
    rho[index] = value;
    return chain.wrap_output(s, rho) - s;
  };
  if (slack(0.0) >= 0.0) return 0.0;
  auto root = math::bisect_root(slack, 0.0, current);
  return root.ok() ? root->x : current;
}

/// Runs the sweep with the wrap constraint anchored at hops[0]'s input
/// token. The parameterization is rotation-sensitive (retention in the
/// anchor token is only expressible through wrap slack), so the public
/// entry point tries every rotation and keeps the best.
CoordinateReport solve_anchored(const std::vector<LoopHopData>& hops,
                                const CoordinateOptions& options) {
  ARB_REQUIRE(hops.size() >= 2, "loop needs at least 2 hops");
  const std::size_t n = hops.size();
  CoordinateReport report;
  report.inputs.assign(n, 0.0);

  // Initialize at the MaxMax point of this rotation: full forwarding,
  // head input at the closed-form single-start optimum.
  amm::MobiusCoefficients m = amm::MobiusCoefficients::identity();
  for (const LoopHopData& hop : hops) {
    m = m.then_hop(hop.reserve_in, hop.reserve_out, hop.gamma);
  }
  const double s0 = m.optimal_input();
  if (s0 <= 0.0) {
    report.converged = true;  // profitless loop: 0 is optimal
    return report;
  }

  const Chain chain{hops};
  double s = s0;
  std::vector<double> rho(n - 1, 1.0);
  double best = chain.profit(s, rho);
  const double scale = hops[0].reserve_in;

  math::ScalarSolveOptions line;
  line.x_tolerance = options.line_tolerance * scale;
  math::ScalarSolveOptions rho_line;
  rho_line.x_tolerance = options.line_tolerance;

  // Compensated evaluation: profit at (s', rho') where rho'[comp] is
  // re-solved so the wrap constraint holds (tight when it has to be).
  // Returns -inf when no feasible compensation exists. This is what lets
  // the sweep travel *along* the active wrap surface, where plain
  // per-coordinate moves jam.
  const auto compensated_profit = [&](double s_value,
                                      std::vector<double> rho_value,
                                      std::size_t comp) {
    const auto slack = [&](double v) {
      rho_value[comp] = v;
      return chain.wrap_output(s_value, rho_value) - s_value;
    };
    const double at_one = slack(1.0);
    if (at_one < 0.0) {
      return -std::numeric_limits<double>::infinity();  // infeasible
    }
    // Prefer the tight root (retain as much as possible in token
    // comp+1); if the constraint is slack even at rho=0, retaining
    // everything is allowed.
    if (slack(0.0) < 0.0) {
      auto root = math::bisect_root(
          [&](double v) { return slack(v); }, 0.0, 1.0);
      rho_value[comp] = root.ok() ? root->x : 1.0;
    } else {
      rho_value[comp] = 0.0;
    }
    return chain.profit(s_value, rho_value);
  };

  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    report.sweeps = sweep + 1;
    const double before = best;

    // Plain head-input coordinate.
    {
      const double hi = max_feasible_head(chain, rho, s, scale);
      const auto objective = [&](double v) { return chain.profit(v, rho); };
      const auto peak = math::golden_section_maximize(objective, 0.0, hi, line);
      if (peak.f > best) {
        best = peak.f;
        s = peak.x;
      }
    }
    // Plain forward-fraction coordinates.
    for (std::size_t i = 0; i < n - 1; ++i) {
      const double lo = min_feasible_rho(chain, s, rho, i);
      const auto objective = [&](double v) {
        std::vector<double> candidate = rho;
        candidate[i] = v;
        return chain.profit(s, candidate);
      };
      const auto peak = math::golden_section_maximize(objective, lo, 1.0,
                                                      rho_line);
      if (peak.f > best) {
        best = peak.f;
        rho[i] = peak.x;
      }
    }
    // Compensated pair moves: free coordinate optimized while another
    // fraction re-solves the wrap constraint.
    for (std::size_t comp = 0; comp < n - 1; ++comp) {
      // (head, rho_comp) pair.
      {
        const auto objective = [&](double v) {
          return compensated_profit(v, rho, comp);
        };
        const auto peak =
            math::golden_section_maximize(objective, 0.0, s * 4.0 + scale * 1e-6,
                                          line);
        if (peak.f > best) {
          best = peak.f;
          s = peak.x;
          // Recover the compensating fraction actually used.
          std::vector<double> candidate = rho;
          (void)compensated_profit(s, candidate, comp);
          const auto slack = [&](double v) {
            candidate[comp] = v;
            return chain.wrap_output(s, candidate) - s;
          };
          if (slack(0.0) < 0.0) {
            auto root = math::bisect_root(slack, 0.0, 1.0);
            rho[comp] = root.ok() ? root->x : rho[comp];
          } else {
            rho[comp] = 0.0;
          }
        }
      }
      // (rho_i, rho_comp) pairs.
      for (std::size_t i = 0; i < n - 1; ++i) {
        if (i == comp) continue;
        const auto objective = [&](double v) {
          std::vector<double> candidate = rho;
          candidate[i] = v;
          return compensated_profit(s, candidate, comp);
        };
        const auto peak =
            math::golden_section_maximize(objective, 0.0, 1.0, rho_line);
        if (peak.f > best) {
          best = peak.f;
          rho[i] = peak.x;
          const auto slack = [&](double v) {
            std::vector<double> candidate = rho;
            candidate[comp] = v;
            return chain.wrap_output(s, candidate) - s;
          };
          if (slack(0.0) < 0.0) {
            auto root = math::bisect_root(slack, 0.0, 1.0);
            rho[comp] = root.ok() ? root->x : rho[comp];
          } else {
            rho[comp] = 0.0;
          }
        }
      }
    }

    if (best - before < options.improvement_tolerance) {
      report.converged = true;
      break;
    }
  }
  // The pair moves track `best` through compensated evaluations; make
  // the reported point consistent with the reported profit.
  best = chain.profit(s, rho);

  report.inputs = chain.inputs(s, rho);
  report.profit_usd = best;
  return report;
}

}  // namespace

CoordinateReport solve_reduced_coordinate(const std::vector<LoopHopData>& hops,
                                          const CoordinateOptions& options) {
  ARB_REQUIRE(hops.size() >= 2, "loop needs at least 2 hops");
  const std::size_t n = hops.size();
  CoordinateReport best;
  for (std::size_t anchor = 0; anchor < n; ++anchor) {
    std::vector<LoopHopData> rotated(n);
    for (std::size_t i = 0; i < n; ++i) rotated[i] = hops[(anchor + i) % n];
    CoordinateReport candidate = solve_anchored(rotated, options);
    if (anchor == 0 || candidate.profit_usd > best.profit_usd) {
      // Map inputs back to the caller's hop indexing.
      CoordinateReport mapped = candidate;
      mapped.inputs.assign(n, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        mapped.inputs[(anchor + i) % n] = candidate.inputs[i];
      }
      best = std::move(mapped);
    }
  }
  return best;
}

}  // namespace arb::core
