#include "core/router.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "amm/any_pool.hpp"
#include "common/error.hpp"
#include "core/loop_nlp.hpp"
#include "core/routing.hpp"

namespace arb::core {
namespace {

/// Enumeration backstop on dense graphs: DFS stops collecting once this
/// many candidate paths exist (ranking then picks the best max_paths).
constexpr std::size_t kMaxEnumerated = 512;

struct Candidate {
  std::vector<PoolId> pools;
  double zero_rate = 1.0;
};

void enumerate_dfs(const graph::TokenGraph& graph, TokenId cur,
                   TokenId token_out, std::size_t max_hops,
                   std::vector<std::uint8_t>& on_path,
                   std::vector<PoolId>& stack, double rate,
                   std::vector<Candidate>& out) {
  if (out.size() >= kMaxEnumerated) return;
  for (PoolId id : graph.pools_of(cur)) {
    const amm::AnyPool& pool = graph.pool(id);
    const TokenId next = pool.other(cur);
    if (on_path[next.value()]) continue;
    // A tick-pinned concentrated position cannot accept input in this
    // direction (zero receivable reserve of `next`); skip the edge so
    // downstream solves never see an empty cap interior.
    if (make_edge_kernel(pool, cur, next).input_cap <= 0.0) continue;
    const double hop_rate = rate * pool.relative_price_of(cur);
    stack.push_back(id);
    if (next == token_out) {
      out.push_back(Candidate{stack, hop_rate});
      if (out.size() >= kMaxEnumerated) {
        stack.pop_back();
        return;
      }
    } else if (stack.size() < max_hops) {
      on_path[next.value()] = 1;
      enumerate_dfs(graph, next, token_out, max_hops, on_path, stack,
                    hop_rate, out);
      on_path[next.value()] = 0;
    }
    stack.pop_back();
  }
}

}  // namespace

std::vector<std::vector<PoolId>> enumerate_paths(
    const graph::TokenGraph& graph, TokenId token_in, TokenId token_out,
    std::size_t max_hops, std::size_t max_paths) {
  std::vector<Candidate> candidates;
  if (max_hops == 0 || max_paths == 0) return {};
  std::vector<std::uint8_t> on_path(graph.token_count(), 0);
  std::vector<PoolId> stack;
  on_path[token_in.value()] = 1;
  enumerate_dfs(graph, token_in, token_out, max_hops, on_path, stack, 1.0,
                candidates);

  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     if (a.zero_rate != b.zero_rate) {
                       return a.zero_rate > b.zero_rate;
                     }
                     return std::lexicographical_compare(
                         a.pools.begin(), a.pools.end(), b.pools.begin(),
                         b.pools.end(),
                         [](PoolId x, PoolId y) {
                           return x.value() < y.value();
                         });
                   });
  if (candidates.size() > max_paths) candidates.resize(max_paths);

  std::vector<std::vector<PoolId>> paths;
  paths.reserve(candidates.size());
  for (Candidate& c : candidates) paths.push_back(std::move(c.pools));
  return paths;
}

Result<RouteResult> route(const graph::TokenGraph& graph,
                          const RouteQuery& query, RouterContext& ctx) {
  if (!query.token_in.valid() ||
      query.token_in.value() >= graph.token_count() ||
      !query.token_out.valid() ||
      query.token_out.value() >= graph.token_count()) {
    return make_error(ErrorCode::kInvalidArgument, "unknown route token");
  }
  if (query.token_in == query.token_out) {
    return make_error(ErrorCode::kInvalidArgument,
                      "route endpoints must differ");
  }
  if (!(std::isfinite(query.amount_in) && query.amount_in >= 0.0)) {
    return make_error(ErrorCode::kInvalidArgument,
                      "route amount must be finite and nonnegative");
  }

  const std::vector<std::vector<PoolId>> paths = enumerate_paths(
      graph, query.token_in, query.token_out, query.max_hops,
      query.max_paths);
  if (paths.empty()) {
    return make_error(ErrorCode::kNotFound,
                      "no path between the route endpoints");
  }

  RouteResult result;
  result.paths.reserve(paths.size());
  for (const std::vector<PoolId>& path : paths) {
    result.paths.push_back(RoutedPath{path, 0.0, 0.0});
  }

  if (paths.size() == 1) {
    double amount = query.amount_in;
    TokenId cur = query.token_in;
    for (PoolId id : paths.front()) {
      const amm::AnyPool& pool = graph.pool(id);
      amount = pool.quote(cur, amount).amount_out;
      cur = pool.other(cur);
    }
    result.paths.front().input = query.amount_in;
    result.paths.front().output = amount;
    result.amount_out = amount;
    result.method = RouteMethod::kDirect;
    return result;
  }

  auto split = optimal_route_split(graph, query.token_in, query.token_out,
                                   paths, query.amount_in, ctx.flow);
  if (!split) return split.error();
  for (std::size_t p = 0; p < paths.size(); ++p) {
    result.paths[p].input = split->inputs[p];
    result.paths[p].output = split->outputs[p];
  }
  result.amount_out = split->total_output;
  result.method = split->used_flow_solver ? RouteMethod::kFlowSolve
                                          : RouteMethod::kWaterFilling;
  result.iterations = split->iterations;
  result.duality_gap = split->duality_gap;
  return result;
}

Result<RouteResult> route(const graph::TokenGraph& graph,
                          const RouteQuery& query) {
  RouterContext ctx;
  return route(graph, query, ctx);
}

Result<double> required_input_for_output(const graph::TokenGraph& graph,
                                         TokenId token_in,
                                         const std::vector<PoolId>& path,
                                         double amount_out) {
  if (path.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "empty path");
  }
  if (!(std::isfinite(amount_out) && amount_out >= 0.0)) {
    return make_error(ErrorCode::kInvalidArgument,
                      "requested output must be finite and nonnegative");
  }
  // Validate continuity and record each hop's output token — the reverse
  // walk enters every pool from that side.
  std::vector<TokenId> hop_out;
  hop_out.reserve(path.size());
  TokenId cur = token_in;
  for (PoolId id : path) {
    if (!id.valid() || id.value() >= graph.pool_count()) {
      return make_error(ErrorCode::kInvalidArgument, "unknown pool in path");
    }
    const amm::AnyPool& pool = graph.pool(id);
    if (!pool.contains(cur)) {
      return make_error(ErrorCode::kInvalidArgument, "discontinuous path");
    }
    cur = pool.other(cur);
    hop_out.push_back(cur);
  }
  if (amount_out == 0.0) return 0.0;

  // Walk the path backward through the concave continuation: for each
  // forward hop F, the reverse-direction signed swap satisfies
  // F̃_rev(−out) = −F⁻¹(out), so carrying amount = −(required amount at
  // this point) composes the inversions hop by hop.
  double amount = -amount_out;
  for (std::size_t k = path.size(); k-- > 0;) {
    const amm::SwapFn inverse =
        amm::signed_swap_fn(graph.pool(path[k]), hop_out[k]);
    amount = inverse(amount);
    if (amount == -std::numeric_limits<double>::infinity()) {
      return make_error(ErrorCode::kCapacityExceeded,
                        "path cannot deliver the requested output");
    }
  }
  return -amount;
}

}  // namespace arb::core
