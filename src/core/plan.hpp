#pragma once

/// \file plan.hpp
/// An executable arbitrage plan: the concrete swap amounts to submit,
/// hop by hop, plus the profit the planner expects. The sim module
/// executes plans against pool state and verifies the expectation.

#include <string>
#include <vector>

#include "common/result.hpp"
#include "core/convex.hpp"
#include "core/outcome.hpp"
#include "graph/cycle.hpp"
#include "graph/token_graph.hpp"

namespace arb::core {

struct PlanStep {
  PoolId pool;
  TokenId token_in;
  TokenId token_out;
  Amount amount_in = 0.0;
  Amount amount_out = 0.0;
};

struct ArbitragePlan {
  std::vector<PlanStep> steps;
  std::vector<TokenProfit> expected_profits;
  double expected_monetized_usd = 0.0;

  /// Tokens that must be borrowed up-front (flash loan) to run the steps
  /// in order: for each token, the peak cumulative deficit across the
  /// step sequence.
  [[nodiscard]] std::vector<TokenProfit> required_upfront() const;

  [[nodiscard]] std::string describe(const graph::TokenGraph& graph) const;
};

/// Plan for a single-start outcome (Traditional / MaxPrice / MaxMax):
/// swap the optimal input around the loop starting at outcome.start_token.
[[nodiscard]] Result<ArbitragePlan> plan_from_single_start(
    const graph::TokenGraph& graph, const graph::Cycle& cycle,
    const StrategyOutcome& outcome);

/// Plan for a convex solution: hop i swaps inputs[i] for outputs[i]; the
/// differences stay in the arbitrageur's wallet as profit.
[[nodiscard]] Result<ArbitragePlan> plan_from_convex(
    const graph::TokenGraph& graph, const graph::Cycle& cycle,
    const ConvexSolution& solution);

}  // namespace arb::core
