#pragma once

/// \file scanner.hpp
/// The top-level facade: one call from market state to ranked, executable
/// arbitrage opportunities. Composes the pieces a bot author would
/// otherwise wire manually — cycle enumeration, profitability filter,
/// strategy optimization, gas netting, diagnostics, and plan construction.

#include <optional>
#include <vector>

#include "common/result.hpp"
#include "core/analysis.hpp"
#include "core/comparison.hpp"
#include "core/convex.hpp"
#include "core/gas.hpp"
#include "core/plan.hpp"

namespace arb::core {

struct ScannerConfig {
  /// Loop lengths to enumerate (the paper: 3, appendix: 4).
  std::vector<std::size_t> loop_lengths = {2, 3};
  /// Strategy used to size each opportunity.
  StrategyKind strategy = StrategyKind::kMaxMax;
  /// Opportunities netting less than this (USD, after gas if a gas model
  /// is set) are dropped.
  double min_net_profit_usd = 0.0;
  /// When set, profits are netted against bundle cost and ranking uses
  /// the net value.
  std::optional<GasModel> gas;
  /// Convex strategy only: let the streaming runtime warm-start each
  /// cycle's barrier solve from its previous optimum (see ConvexContext).
  /// Off by default so batch scans and differential tests stay on the
  /// single cold-start arithmetic path.
  bool convex_warm_start = false;
  ComparisonOptions options;
};

/// One ranked, ready-to-execute opportunity.
struct Opportunity {
  graph::Cycle cycle;
  StrategyOutcome outcome;
  ArbitragePlan plan;
  LoopDiagnostics diagnostics;
  /// Monetized profit net of gas (equals outcome.monetized_usd when no
  /// gas model is configured).
  double net_profit_usd = 0.0;

  explicit Opportunity(graph::Cycle c) : cycle(std::move(c)) {}
};

/// Prices one loop under the scanner config: runs the configured
/// strategy, nets gas, builds the plan and diagnostics. Returns an empty
/// optional when the loop does not clear min_net_profit_usd. Exposed so
/// the streaming runtime re-prices dirty loops through exactly the same
/// code path as a full scan.
[[nodiscard]] Result<std::optional<Opportunity>> evaluate_opportunity(
    const graph::TokenGraph& graph, const market::CexPriceFeed& prices,
    const graph::Cycle& loop, const ScannerConfig& config);

/// Context variant: the convex strategy reuses ctx's workspace across
/// calls (and, when ctx.warm is set and config.convex_warm_start is on,
/// warm-starts the barrier solve). Numerically identical to the plain
/// overload when warm-starting is off or misses.
[[nodiscard]] Result<std::optional<Opportunity>> evaluate_opportunity(
    const graph::TokenGraph& graph, const market::CexPriceFeed& prices,
    const graph::Cycle& loop, const ScannerConfig& config,
    ConvexContext& ctx);

/// Strict total order used to rank opportunities: net profit descending,
/// ties broken by the cycle's canonical rotation key. Because no two
/// distinct cycles share a key, the ranking is fully deterministic — two
/// scans of identical market state produce identical sequences.
[[nodiscard]] bool opportunity_before(const Opportunity& a,
                                      const Opportunity& b);

/// Sorts opportunities with opportunity_before (keys are computed once
/// per element, not once per comparison).
void rank_opportunities(std::vector<Opportunity>& opportunities);

/// Scans the market and returns opportunities sorted by net profit,
/// best first (ties broken deterministically by cycle identity). Loops
/// whose strategy profit does not clear the threshold are omitted.
[[nodiscard]] Result<std::vector<Opportunity>> scan_market(
    const graph::TokenGraph& graph, const market::CexPriceFeed& prices,
    const ScannerConfig& config = {});

}  // namespace arb::core
