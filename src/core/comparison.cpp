#include "core/comparison.hpp"

#include "common/logging.hpp"
#include "graph/cycle_enumeration.hpp"

namespace arb::core {

Result<std::vector<LoopComparison>> compare_strategies(
    const graph::TokenGraph& graph, const market::CexPriceFeed& prices,
    const std::vector<graph::Cycle>& loops, const ComparisonOptions& options) {
  std::vector<LoopComparison> results;
  results.reserve(loops.size());
  for (const graph::Cycle& cycle : loops) {
    LoopComparison row(cycle);

    auto rotations =
        evaluate_all_rotations(graph, prices, cycle, options.single_start);
    if (!rotations) return rotations.error();
    row.traditional = *std::move(rotations);

    auto max_price =
        evaluate_max_price(graph, prices, cycle, options.single_start);
    if (!max_price) return max_price.error();
    row.max_price = *std::move(max_price);

    auto max_max = evaluate_max_max(graph, prices, cycle, options.single_start);
    if (!max_max) return max_max.error();
    row.max_max = *std::move(max_max);

    auto convex = solve_convex(graph, prices, cycle, options.convex);
    if (!convex) return convex.error();
    row.convex = *std::move(convex);

    results.push_back(std::move(row));
  }
  return results;
}

Result<MarketStudy> run_market_study(const market::MarketSnapshot& snapshot,
                                     std::size_t loop_length,
                                     const market::PoolFilter& filter,
                                     const ComparisonOptions& options) {
  MarketStudy study;
  study.market = snapshot.filtered(filter);
  ARB_LOG_INFO("market study: filtered to "
               << study.market.graph.token_count() << " tokens / "
               << study.market.graph.pool_count() << " pools");

  const auto cycles =
      graph::enumerate_fixed_length_cycles(study.market.graph, loop_length);
  const auto arbitrage =
      graph::filter_arbitrage(study.market.graph, cycles);
  ARB_LOG_INFO("market study: " << cycles.size() << " directed cycles, "
                                << arbitrage.size() << " arbitrage loops");

  auto comparisons = compare_strategies(study.market.graph,
                                        study.market.prices, arbitrage,
                                        options);
  if (!comparisons) return comparisons.error();
  study.loops = *std::move(comparisons);
  return study;
}

}  // namespace arb::core
