#include "core/outcome.hpp"

namespace arb::core {

std::string_view to_string(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kTraditional:
      return "Traditional";
    case StrategyKind::kMaxPrice:
      return "MaxPrice";
    case StrategyKind::kMaxMax:
      return "MaxMax";
    case StrategyKind::kConvexOptimization:
      return "ConvexOptimization";
  }
  return "unknown";
}

}  // namespace arb::core
