#pragma once

/// \file single_start.hpp
/// The Traditional, MaxPrice and MaxMax strategies (Section III of the
/// paper). All three reduce to "optimize the single input amount on a
/// rotation of the loop"; they differ only in which rotation(s) they try.

#include "common/result.hpp"
#include "graph/cycle.hpp"
#include "graph/token_graph.hpp"
#include "market/price_feed.hpp"
#include "core/outcome.hpp"

namespace arb::core {

struct SingleStartOptions {
  /// True (default): the paper's bisection on d out/d in = 1.
  /// False: the closed-form Möbius optimum (identical to solver
  /// tolerance; used for cross-checking and for speed).
  bool use_bisection = true;
  double bisection_tolerance = 1e-10;
};

/// Traditional strategy: fix the walk to start at tokens()[start_offset]
/// and maximize (output − input); monetize with the start token's CEX
/// price. Fails with kNotFound if that price is missing.
[[nodiscard]] Result<StrategyOutcome> evaluate_traditional(
    const graph::TokenGraph& graph, const market::CexPriceFeed& prices,
    const graph::Cycle& cycle, std::size_t start_offset,
    const SingleStartOptions& options = {});

/// MaxPrice strategy: traditional from the loop token with the highest
/// CEX price.
[[nodiscard]] Result<StrategyOutcome> evaluate_max_price(
    const graph::TokenGraph& graph, const market::CexPriceFeed& prices,
    const graph::Cycle& cycle, const SingleStartOptions& options = {});

/// MaxMax strategy: traditional from every token in turn; the best
/// monetized profit wins (eq. 6).
[[nodiscard]] Result<StrategyOutcome> evaluate_max_max(
    const graph::TokenGraph& graph, const market::CexPriceFeed& prices,
    const graph::Cycle& cycle, const SingleStartOptions& options = {});

/// All n traditional outcomes (one per rotation), in rotation order.
/// MaxMax is their argmax; exposed separately for Figs. 2 and 5.
[[nodiscard]] Result<std::vector<StrategyOutcome>> evaluate_all_rotations(
    const graph::TokenGraph& graph, const market::CexPriceFeed& prices,
    const graph::Cycle& cycle, const SingleStartOptions& options = {});

}  // namespace arb::core
