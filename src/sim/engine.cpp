#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace arb::sim {
namespace {

/// Copies of the pools touched by a plan, for rollback. Whole-value
/// copies (not just reserves) so every venue kind restores exactly.
class PoolCheckpoint {
 public:
  PoolCheckpoint(graph::TokenGraph& graph, const core::ArbitragePlan& plan)
      : graph_(graph) {
    for (const core::PlanStep& step : plan.steps) {
      if (saved_.find(step.pool) == saved_.end()) {
        saved_.emplace(step.pool, graph.pool(step.pool));
      }
    }
  }

  void rollback() {
    for (const auto& [id, pool] : saved_) {
      graph_.mutable_pool(id) = pool;
    }
  }

 private:
  graph::TokenGraph& graph_;
  std::unordered_map<PoolId, amm::AnyPool> saved_;
};

}  // namespace

ExecutionEngine::ExecutionEngine(ExecutionOptions options)
    : options_(options) {}

Result<ExecutionReport> ExecutionEngine::execute(
    graph::TokenGraph& graph, const market::CexPriceFeed& prices,
    const core::ArbitragePlan& plan) const {
  if (plan.steps.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "empty plan");
  }

  PoolCheckpoint checkpoint(graph, plan);
  std::unordered_map<TokenId, Amount> wallet;
  std::unordered_map<TokenId, Amount> peak_borrow;
  ExecutionReport report;

  const auto fail = [&](ErrorCode code, const std::string& message) {
    checkpoint.rollback();
    return make_error(code, message);
  };

  for (const core::PlanStep& step : plan.steps) {
    amm::AnyPool& pool = graph.mutable_pool(step.pool);
    if (!pool.contains(step.token_in) ||
        pool.other(step.token_in) != step.token_out) {
      return fail(ErrorCode::kInvalidArgument,
                  "plan step routes wrong tokens through " +
                      to_string(step.pool));
    }
    if (!options_.flash_loan &&
        wallet[step.token_in] + 1e-12 < step.amount_in) {
      return fail(ErrorCode::kInvariantViolated,
                  "unfunded step without flash loan: need " +
                      std::to_string(step.amount_in) + " " +
                      graph.symbol(step.token_in));
    }

    // The k = r0·r1 invariant is a CPMM notion; StableSwap conserves its
    // own D and concentrated positions their liquidity, both enforced by
    // the pool types themselves.
    const bool check_k = pool.is_cpmm();
    const double k_before = check_k ? pool.cpmm().k() : 0.0;
    auto quote = pool.apply_swap(step.token_in, step.amount_in);
    if (!quote) return fail(quote.error().code, quote.error().message);
    if (check_k && pool.cpmm().k() < k_before * (1.0 - 1e-12)) {
      return fail(ErrorCode::kInvariantViolated,
                  "constant product decreased in " + to_string(step.pool));
    }

    // Slippage check: realized output must reach the planned output
    // (within tolerance).
    if (quote->amount_out <
        step.amount_out * (1.0 - options_.slippage_tolerance) - 1e-12) {
      return fail(ErrorCode::kInvariantViolated,
                  "slippage: planned " + std::to_string(step.amount_out) +
                      ", realized " + std::to_string(quote->amount_out));
    }

    wallet[step.token_in] -= step.amount_in;
    peak_borrow[step.token_in] =
        std::max(peak_borrow[step.token_in], -wallet[step.token_in]);
    wallet[step.token_out] += quote->amount_out;
    ++report.steps_executed;
  }

  // Flash-loan fee on each token's peak borrow, paid at settlement.
  if (options_.flash_loan && options_.flash_loan_fee > 0.0) {
    for (const auto& [token, borrowed] : peak_borrow) {
      if (borrowed > 0.0) {
        wallet[token] -= borrowed * options_.flash_loan_fee;
      }
    }
  }

  // Atomic settlement: every token balance must be non-negative, i.e.
  // all flash-loan borrowings (plus fees) repaid out of the bundle itself.
  for (const auto& [token, balance] : wallet) {
    if (balance < -1e-9) {
      return fail(ErrorCode::kInvariantViolated,
                  "negative final balance of " + graph.symbol(token) + ": " +
                      std::to_string(balance));
    }
  }

  for (const auto& [token, balance] : wallet) {
    report.realized_profits.push_back(core::TokenProfit{token, balance});
    if (prices.has_price(token)) {
      report.realized_usd += prices.value_usd(token, balance);
    }
  }
  std::sort(report.realized_profits.begin(), report.realized_profits.end(),
            [](const core::TokenProfit& a, const core::TokenProfit& b) {
              return a.token < b.token;
            });
  report.mismatch_usd = plan.expected_monetized_usd - report.realized_usd;
  return report;
}

}  // namespace arb::sim
