#include "sim/replay.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "core/plan.hpp"
#include "graph/cycle_enumeration.hpp"

namespace arb::sim {
namespace {

/// Exogenous flow: nudges each pool's internal price by a log-normal
/// shock (a fee-free trade by the rest of the market). Reserve-based
/// pools scale their reserves; concentrated positions move their price.
void perturb_pools(graph::TokenGraph& graph, Rng& rng, double sigma) {
  for (const amm::AnyPool& pool : graph.pools()) {
    const double shock = rng.normal(0.0, sigma);
    if (pool.kind() == amm::PoolKind::kConcentrated) {
      const Status moved = graph.mutable_pool(pool.id()).set_concentrated_state(
          pool.concentrated().liquidity(), shocked_price(pool, shock));
      ARB_REQUIRE(moved.ok(), "clamped shock left the position range");
      continue;
    }
    const auto [r0, r1] = shocked_reserves(pool, shock);
    const Status moved = graph.set_pool_reserves(pool.id(), r0, r1);
    ARB_REQUIRE(moved.ok(), "shocked reserves invalid");
  }
}

}  // namespace

std::pair<Amount, Amount> shocked_reserves(const amm::AnyPool& pool,
                                           double shock) {
  // Scale reserves (r0·s, r1/s): price moves by s², k unchanged on a CPMM.
  // The log shock is clamped so an extreme sigma cannot overflow one side
  // to inf (or underflow it to a subnormal) — set_pool_reserves would
  // reject the result and abort the whole replay.
  const double s = std::exp(std::clamp(shock, -600.0, 600.0) / 2.0);
  return {pool.reserve0() * s, pool.reserve1() / s};
}

double shocked_price(const amm::AnyPool& pool, double shock) {
  const amm::ConcentratedPool& clp = pool.concentrated();
  const double margin = 1e-6 * (std::log(clp.p_hi()) - std::log(clp.p_lo()));
  const double log_price =
      std::clamp(std::log(clp.price()) + shock, std::log(clp.p_lo()) + margin,
                 std::log(clp.p_hi()) - margin);
  return std::exp(log_price);
}

Result<ReplayResult> run_replay(const market::MarketSnapshot& snapshot,
                                const ReplayConfig& config) {
  market::MarketSnapshot market = snapshot;  // working copy
  Rng rng(config.seed);
  std::optional<market::PriceProcess> process;
  if (config.use_price_process) {
    process.emplace(market, config.price_process, config.seed);
  }
  const ExecutionEngine engine;
  ReplayResult result;

  for (std::size_t block = 0; block < config.blocks; ++block) {
    if (process.has_value()) {
      process->step(market);
    } else {
      perturb_pools(market.graph, rng, config.block_noise_sigma);
    }

    BlockResult row;
    row.block = block;

    auto cycles = graph::enumerate_fixed_length_cycles(market.graph,
                                                       config.loop_length);
    auto loops = graph::filter_arbitrage(market.graph, std::move(cycles));
    row.arbitrage_loops = loops.size();

    // Pick the loop with the best strategy profit and execute it.
    double best_usd = 0.0;
    std::optional<core::ArbitragePlan> best_plan;
    for (const graph::Cycle& loop : loops) {
      Result<core::ArbitragePlan> plan =
          make_error(ErrorCode::kNotFound, "unset");
      double planned_usd = 0.0;
      if (config.strategy == core::StrategyKind::kConvexOptimization) {
        auto solution = core::solve_convex(market.graph, market.prices, loop,
                                           config.options.convex);
        if (!solution) return solution.error();
        planned_usd = solution->outcome.monetized_usd;
        plan = core::plan_from_convex(market.graph, loop, *solution);
      } else {
        Result<core::StrategyOutcome> outcome =
            config.strategy == core::StrategyKind::kMaxPrice
                ? core::evaluate_max_price(market.graph, market.prices, loop,
                                           config.options.single_start)
                : core::evaluate_max_max(market.graph, market.prices, loop,
                                         config.options.single_start);
        if (!outcome) return outcome.error();
        planned_usd = outcome->monetized_usd;
        plan = core::plan_from_single_start(market.graph, loop, *outcome);
      }
      if (!plan) return plan.error();
      if (planned_usd > best_usd) {
        best_usd = planned_usd;
        best_plan = *std::move(plan);
      }
    }

    if (best_plan.has_value() && best_usd > 0.0) {
      row.planned_usd = best_usd;
      auto report = engine.execute(market.graph, market.prices, *best_plan);
      if (!report) return report.error();
      row.realized_usd = report->realized_usd;
      result.total_realized_usd += report->realized_usd;
    }
    result.blocks.push_back(row);
  }
  return result;
}

}  // namespace arb::sim
