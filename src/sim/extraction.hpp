#pragma once

/// \file extraction.hpp
/// Market-level value extraction: given all detected arbitrage loops,
/// greedily execute the most profitable one, re-evaluate (loops share
/// pools, so each execution shifts the others), and repeat until no loop
/// clears the profit threshold. Measures how much total value a strategy
/// can actually extract from a market — the market-level complement to
/// the paper's per-loop comparison.

#include <string>
#include <vector>

#include "common/result.hpp"
#include "core/comparison.hpp"
#include "graph/cycle.hpp"
#include "market/price_feed.hpp"
#include "sim/engine.hpp"

namespace arb::sim {

struct ExtractionConfig {
  core::StrategyKind strategy = core::StrategyKind::kMaxMax;
  core::ComparisonOptions options;
  /// Loops promising less than this (USD) are not executed.
  double min_profit_usd = 1e-6;
  /// Hard cap on executions (loops re-open as others execute).
  std::size_t max_executions = 1000;
};

struct ExtractionStep {
  std::size_t loop_index = 0;  ///< index into the input loop list
  double planned_usd = 0.0;
  double realized_usd = 0.0;
};

struct ExtractionResult {
  std::vector<ExtractionStep> steps;
  double total_realized_usd = 0.0;
  /// Loops still profitable (above threshold) when the cap was hit;
  /// zero when extraction ran to completion.
  std::size_t remaining_profitable = 0;
};

/// Mutates `graph` (pools are traded against). Loops must reference it.
[[nodiscard]] Result<ExtractionResult> extract_all(
    graph::TokenGraph& graph, const market::CexPriceFeed& prices,
    const std::vector<graph::Cycle>& loops,
    const ExtractionConfig& config = {});

}  // namespace arb::sim
