#include "sim/extraction.hpp"

#include <optional>

#include "core/plan.hpp"

namespace arb::sim {
namespace {

struct Candidate {
  std::size_t loop_index = 0;
  double planned_usd = 0.0;
  core::ArbitragePlan plan;
};

/// Evaluates one loop under the configured strategy on current state.
Result<std::optional<Candidate>> evaluate(const graph::TokenGraph& graph,
                                          const market::CexPriceFeed& prices,
                                          const graph::Cycle& loop,
                                          std::size_t index,
                                          const ExtractionConfig& config) {
  // Skip cheaply when the orientation holds no profit at current state.
  if (loop.price_product(graph) <= 1.0) {
    return std::optional<Candidate>{};
  }
  Candidate candidate;
  candidate.loop_index = index;
  if (config.strategy == core::StrategyKind::kConvexOptimization) {
    auto solution =
        core::solve_convex(graph, prices, loop, config.options.convex);
    if (!solution) return solution.error();
    candidate.planned_usd = solution->outcome.monetized_usd;
    auto plan = core::plan_from_convex(graph, loop, *solution);
    if (!plan) return plan.error();
    candidate.plan = *std::move(plan);
  } else {
    auto outcome =
        config.strategy == core::StrategyKind::kMaxPrice
            ? core::evaluate_max_price(graph, prices, loop,
                                       config.options.single_start)
            : core::evaluate_max_max(graph, prices, loop,
                                     config.options.single_start);
    if (!outcome) return outcome.error();
    candidate.planned_usd = outcome->monetized_usd;
    auto plan = core::plan_from_single_start(graph, loop, *outcome);
    if (!plan) return plan.error();
    candidate.plan = *std::move(plan);
  }
  if (candidate.planned_usd < config.min_profit_usd) {
    return std::optional<Candidate>{};
  }
  return std::optional<Candidate>{std::move(candidate)};
}

}  // namespace

Result<ExtractionResult> extract_all(graph::TokenGraph& graph,
                                     const market::CexPriceFeed& prices,
                                     const std::vector<graph::Cycle>& loops,
                                     const ExtractionConfig& config) {
  ExtractionResult result;
  const ExecutionEngine engine;

  for (std::size_t round = 0; round < config.max_executions; ++round) {
    // Best remaining candidate at the current pool state.
    std::optional<Candidate> best;
    std::size_t profitable = 0;
    for (std::size_t i = 0; i < loops.size(); ++i) {
      auto candidate = evaluate(graph, prices, loops[i], i, config);
      if (!candidate) return candidate.error();
      if (!candidate->has_value()) continue;
      ++profitable;
      if (!best || (**candidate).planned_usd > best->planned_usd) {
        best = **candidate;
      }
    }
    if (!best) {
      result.remaining_profitable = 0;
      return result;
    }
    result.remaining_profitable = profitable;

    auto report = engine.execute(graph, prices, best->plan);
    if (!report) return report.error();
    result.steps.push_back(ExtractionStep{best->loop_index,
                                          best->planned_usd,
                                          report->realized_usd});
    result.total_realized_usd += report->realized_usd;
  }
  return result;
}

}  // namespace arb::sim
