#pragma once

/// \file integer_check.hpp
/// Re-executes a real-valued arbitrage plan in exact on-chain integer
/// arithmetic and reports how much of the promised profit survives
/// quantization and flooring. This is the pre-flight check a production
/// bot runs before submitting a bundle: the double model plans, the
/// integer model decides.

#include <vector>

#include "common/result.hpp"
#include "core/plan.hpp"
#include "graph/token_graph.hpp"
#include "market/price_feed.hpp"

namespace arb::sim {

struct IntegerCheckOptions {
  /// Base units per token (1e18 = ETH-style 18 decimals).
  double units_per_token = 1e12;
  /// Per-token deficit (in tokens) still counted as settling. Plans fix
  /// every hop's input up front, so flooring can leave a hop a few base
  /// units short of repaying its borrow; a real bundle forwards actual
  /// outputs and absorbs this. Deficits beyond the tolerance mean the
  /// plan genuinely does not settle.
  double settle_tolerance_tokens = 1e-6;
};

struct IntegerCheckReport {
  /// Realized per-token profit in token units (descaled back to doubles).
  std::vector<core::TokenProfit> realized_profits;
  /// Realized profit valued at CEX prices.
  double realized_usd = 0.0;
  /// Promised minus integer-realized, in USD.
  double quantization_loss_usd = 0.0;
  /// True iff every flash-loan borrowing was repayable (no negative
  /// final balance) in integer arithmetic.
  bool settles = false;
};

/// Runs the plan on quantized IntegerPool copies of the plan's pools.
/// The pools in `graph` are not mutated.
[[nodiscard]] Result<IntegerCheckReport> check_plan_integer(
    const graph::TokenGraph& graph, const market::CexPriceFeed& prices,
    const core::ArbitragePlan& plan, const IntegerCheckOptions& options = {});

}  // namespace arb::sim
