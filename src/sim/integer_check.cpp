#include "sim/integer_check.hpp"

#include <cmath>
#include <map>
#include <unordered_map>

#include "amm/integer_pool.hpp"
#include "common/error.hpp"

namespace arb::sim {
namespace {

U256 quantize_amount(double amount, double units_per_token) {
  const double scaled = std::floor(amount * units_per_token);
  ARB_REQUIRE(scaled >= 0.0 && scaled < 0x1.0p128,
              "amount outside quantization range");
  const double hi = std::floor(scaled / 0x1.0p64);
  const double lo = scaled - hi * 0x1.0p64;
  return U256::from_limbs(static_cast<std::uint64_t>(lo),
                          static_cast<std::uint64_t>(hi), 0, 0);
}

}  // namespace

Result<IntegerCheckReport> check_plan_integer(
    const graph::TokenGraph& graph, const market::CexPriceFeed& prices,
    const core::ArbitragePlan& plan, const IntegerCheckOptions& options) {
  if (plan.steps.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "empty plan");
  }

  // Quantized working copies of the touched pools.
  std::unordered_map<PoolId, amm::IntegerPool> pools;
  for (const core::PlanStep& step : plan.steps) {
    if (pools.find(step.pool) == pools.end()) {
      const amm::AnyPool& pool = graph.pool(step.pool);
      if (!pool.is_cpmm()) {
        return make_error(ErrorCode::kInvalidArgument,
                          "integer check models CPMM arithmetic only; plan "
                          "touches a non-CPMM pool " + to_string(step.pool));
      }
      pools.emplace(step.pool, amm::IntegerPool::from_real(
                                   pool.cpmm(), options.units_per_token));
    }
  }

  // Signed integer balances do not exist for U256; track credit and
  // debit separately per token.
  std::map<TokenId, U256> credit;
  std::map<TokenId, U256> debit;

  for (const core::PlanStep& step : plan.steps) {
    amm::IntegerPool& pool = pools.at(step.pool);
    const U256 amount_in =
        quantize_amount(step.amount_in, options.units_per_token);
    const U256 k_before = pool.k();
    auto out = pool.apply_swap(step.token_in, amount_in);
    if (!out) return out.error();
    ARB_REQUIRE(pool.k() >= k_before, "integer k decreased");
    debit[step.token_in] = debit[step.token_in] + amount_in;
    credit[step.token_out] = credit[step.token_out] + *out;
  }

  IntegerCheckReport report;
  report.settles = true;
  const double tolerance_units =
      options.settle_tolerance_tokens * options.units_per_token;
  for (const auto& [token, owed] : debit) {
    const U256 have = credit.count(token) ? credit[token] : U256{0};
    if (have < owed && (owed - have).to_double() > tolerance_units) {
      report.settles = false;
    }
  }

  for (const auto& [token, have] : credit) {
    const U256 owed = debit.count(token) ? debit[token] : U256{0};
    const double net = (have >= owed)
                           ? (have - owed).to_double()
                           : -(owed - have).to_double();
    const double tokens = net / options.units_per_token;
    report.realized_profits.push_back(core::TokenProfit{token, tokens});
    if (prices.has_price(token)) {
      report.realized_usd += prices.value_usd(token, tokens);
    }
  }
  // Tokens that were only debited (no credit) — possible for malformed
  // plans; include them so the loss is visible.
  for (const auto& [token, owed] : debit) {
    if (credit.count(token)) continue;
    const double tokens = -owed.to_double() / options.units_per_token;
    report.realized_profits.push_back(core::TokenProfit{token, tokens});
    if (prices.has_price(token)) {
      report.realized_usd += prices.value_usd(token, tokens);
    }
  }

  report.quantization_loss_usd =
      plan.expected_monetized_usd - report.realized_usd;
  return report;
}

}  // namespace arb::sim
