#include "sim/competition.hpp"

#include <optional>

#include "common/error.hpp"
#include "core/plan.hpp"
#include "graph/cycle_enumeration.hpp"
#include "sim/engine.hpp"

namespace arb::sim {
namespace {

struct Bid {
  double planned_usd = 0.0;
  core::ArbitragePlan plan;
};

/// The bot's best bundle over all current loops (empty when nothing is
/// profitable).
Result<std::optional<Bid>> best_bid(const market::MarketSnapshot& market,
                                    const std::vector<graph::Cycle>& loops,
                                    const BotSpec& bot) {
  std::optional<Bid> best;
  for (const graph::Cycle& loop : loops) {
    Bid bid;
    if (bot.strategy == core::StrategyKind::kConvexOptimization) {
      auto solution = core::solve_convex(market.graph, market.prices, loop,
                                         bot.options.convex);
      if (!solution) return solution.error();
      if (solution->outcome.monetized_usd <= 0.0) continue;
      bid.planned_usd = solution->outcome.monetized_usd;
      auto plan = core::plan_from_convex(market.graph, loop, *solution);
      if (!plan) return plan.error();
      bid.plan = *std::move(plan);
    } else {
      auto outcome =
          bot.strategy == core::StrategyKind::kMaxPrice
              ? core::evaluate_max_price(market.graph, market.prices, loop,
                                         bot.options.single_start)
              : core::evaluate_max_max(market.graph, market.prices, loop,
                                       bot.options.single_start);
      if (!outcome) return outcome.error();
      if (outcome->monetized_usd <= 0.0) continue;
      bid.planned_usd = outcome->monetized_usd;
      auto plan = core::plan_from_single_start(market.graph, loop, *outcome);
      if (!plan) return plan.error();
      bid.plan = *std::move(plan);
    }
    if (!best || bid.planned_usd > best->planned_usd) {
      best = std::move(bid);
    }
  }
  return best;
}

}  // namespace

Result<CompetitionResult> run_competition(
    const market::MarketSnapshot& snapshot, const std::vector<BotSpec>& bots,
    const CompetitionConfig& config) {
  if (bots.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "no bots");
  }
  if (config.blocks == 0) {
    return make_error(ErrorCode::kInvalidArgument, "zero blocks");
  }

  market::MarketSnapshot market = snapshot;
  market::PriceProcess process(market, config.dynamics, config.seed);
  const ExecutionEngine engine;

  CompetitionResult result;
  result.standings.reserve(bots.size());
  for (const BotSpec& bot : bots) {
    result.standings.push_back(BotStanding{bot.name, 0, 0.0});
  }

  for (std::size_t block = 0; block < config.blocks; ++block) {
    process.step(market);
    const auto loops = graph::filter_arbitrage(
        market.graph,
        graph::enumerate_fixed_length_cycles(market.graph,
                                             config.loop_length));
    if (loops.empty()) continue;

    // Sealed-bid round: every bot plans on the same state.
    std::optional<std::size_t> winner;
    std::optional<Bid> winning_bid;
    for (std::size_t b = 0; b < bots.size(); ++b) {
      auto bid = best_bid(market, loops, bots[b]);
      if (!bid) return bid.error();
      if (!bid->has_value()) continue;
      if (!winning_bid || (**bid).planned_usd > winning_bid->planned_usd) {
        winning_bid = **bid;
        winner = b;
      }
    }
    if (!winner.has_value()) continue;
    ++result.contested_blocks;

    auto report = engine.execute(market.graph, market.prices,
                                 winning_bid->plan);
    if (!report) return report.error();
    ++result.standings[*winner].blocks_won;
    result.standings[*winner].realized_usd += report->realized_usd;
  }
  return result;
}

}  // namespace arb::sim
