#pragma once

/// \file engine.hpp
/// Executes arbitrage plans against live pool state.
///
/// The engine is the ground truth the analytical layer is judged against:
/// it re-quotes every swap at the *current* reserves (mutating them), so
/// a plan whose math is wrong realizes less than it promised. It enforces
/// the same invariants the V2 pair contract does — k never decreases —
/// and models atomic flash-loan execution: all borrowed tokens must be
/// repayable at the end or the whole bundle reverts.

#include <unordered_map>
#include <vector>

#include "common/result.hpp"
#include "core/plan.hpp"
#include "graph/token_graph.hpp"
#include "market/price_feed.hpp"

namespace arb::sim {

struct ExecutionOptions {
  /// Allowed relative shortfall of realized vs planned output per step
  /// before the bundle reverts (plans quote against a snapshot; executing
  /// against the same state realizes exactly, so the default is tight).
  double slippage_tolerance = 1e-6;
  /// If true (flash-loan semantics), the wallet may go negative during
  /// the bundle as long as it ends non-negative. If false, every step
  /// must be funded by prior steps' outputs plus the initial wallet.
  bool flash_loan = true;
  /// Proportional fee charged on each token's peak borrow (Aave V2
  /// charges 0.09%). Deducted at settlement; a bundle whose profit does
  /// not cover it reverts.
  double flash_loan_fee = 0.0;
};

struct ExecutionReport {
  /// Net wallet movement per token (realized profit).
  std::vector<core::TokenProfit> realized_profits;
  /// Realized profit valued at CEX prices.
  double realized_usd = 0.0;
  /// Planned minus realized (USD); |mismatch| beyond tolerance reverts.
  double mismatch_usd = 0.0;
  std::size_t steps_executed = 0;
};

class ExecutionEngine {
 public:
  explicit ExecutionEngine(ExecutionOptions options = {});

  /// Executes the plan atomically against `graph`'s pools. On any
  /// violation (slippage, unfunded step, k shrink, negative final
  /// wallet) the pools are rolled back and an error is returned.
  [[nodiscard]] Result<ExecutionReport> execute(
      graph::TokenGraph& graph, const market::CexPriceFeed& prices,
      const core::ArbitragePlan& plan) const;

 private:
  ExecutionOptions options_;
};

}  // namespace arb::sim
