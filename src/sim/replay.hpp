#pragma once

/// \file replay.hpp
/// Multi-block market replay: a small bot harness that, block after
/// block, perturbs pool prices (exogenous trading flow), re-detects the
/// best arbitrage loop, runs a chosen strategy, and executes the plan.
/// Used by the live-bot example and the strategy-ablation bench.

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.hpp"
#include "common/rng.hpp"
#include "core/comparison.hpp"
#include "market/price_process.hpp"
#include "market/snapshot.hpp"
#include "sim/engine.hpp"

namespace arb::sim {

struct ReplayConfig {
  std::uint64_t seed = 7;
  std::size_t blocks = 50;
  /// Log-price shock applied to every pool each block (exogenous flow).
  /// Used when use_price_process is false.
  double block_noise_sigma = 0.01;
  /// If true, market dynamics come from market::PriceProcess (GBM
  /// fundamentals + retail flow + CEX re-quotes) instead of plain
  /// per-pool noise with a frozen price feed.
  bool use_price_process = false;
  market::PriceProcessConfig price_process;
  /// Loop length the bot scans for.
  std::size_t loop_length = 3;
  /// Strategy the bot runs on the best loop it finds.
  core::StrategyKind strategy = core::StrategyKind::kMaxMax;
  core::ComparisonOptions options;
};

struct BlockResult {
  std::size_t block = 0;
  std::size_t arbitrage_loops = 0;  ///< profitable loops seen this block
  double planned_usd = 0.0;         ///< profit promised by the strategy
  double realized_usd = 0.0;        ///< profit realized by execution
};

struct ReplayResult {
  std::vector<BlockResult> blocks;
  double total_realized_usd = 0.0;
};

/// Reserves after a fee-free exogenous trade that moves the pool's
/// internal price by e^shock (reserve0·s, reserve1/s with
/// s = e^{shock/2}; on a CPMM this preserves the constant product).
/// Valid for reserve-based pools (CPMM, StableSwap); concentrated
/// positions move their price state instead — see shocked_price. Shared
/// by run_replay's per-block noise and the streaming runtime's replay
/// event stream.
[[nodiscard]] std::pair<Amount, Amount> shocked_reserves(
    const amm::AnyPool& pool, double shock);

/// Price after a log shock, clamped strictly inside a concentrated
/// position's range (at the edge the position is one-sided and quotes
/// go flat). Precondition: pool is concentrated.
[[nodiscard]] double shocked_price(const amm::AnyPool& pool, double shock);

/// Runs the replay on a copy of the snapshot (the input is not mutated).
[[nodiscard]] Result<ReplayResult> run_replay(
    const market::MarketSnapshot& snapshot, const ReplayConfig& config);

}  // namespace arb::sim
