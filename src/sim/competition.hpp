#pragma once

/// \file competition.hpp
/// Multi-bot competition: several arbitrage bots watch the same market;
/// each block, every bot plans its best bundle and the one promising the
/// most profit wins the block (the priority-auction abstraction of MEV
/// competition — the highest-value bundle outbids the rest). The winner
/// executes and moves the pools; the losers get nothing. This turns the
/// paper's per-loop profit ordering into a concrete competitive payoff:
/// a bot that monetizes better (MaxMax/Convex) systematically outbids a
/// MaxPrice bot on the loops where the start token matters.

#include <string>
#include <vector>

#include "common/result.hpp"
#include "core/comparison.hpp"
#include "market/price_process.hpp"
#include "market/snapshot.hpp"

namespace arb::sim {

struct BotSpec {
  std::string name;
  core::StrategyKind strategy = core::StrategyKind::kMaxMax;
  core::ComparisonOptions options;
};

struct CompetitionConfig {
  std::uint64_t seed = 11;
  std::size_t blocks = 50;
  std::size_t loop_length = 3;
  market::PriceProcessConfig dynamics;
};

struct BotStanding {
  std::string name;
  std::size_t blocks_won = 0;
  double realized_usd = 0.0;
};

struct CompetitionResult {
  std::vector<BotStanding> standings;  ///< same order as the bot list
  std::size_t contested_blocks = 0;    ///< blocks where any bot bid > 0
};

/// Runs the competition on a copy of the snapshot.
/// Preconditions: at least one bot, block count > 0.
[[nodiscard]] Result<CompetitionResult> run_competition(
    const market::MarketSnapshot& snapshot, const std::vector<BotSpec>& bots,
    const CompetitionConfig& config = {});

}  // namespace arb::sim
